//! Sketch-driven adaptive execution: epoch-boundary shard rebalancing
//! and drift-aware replanning, measured end to end.
//!
//! **Balance section** — a fleet of 13 single-label Kleene queries
//! (`li+(x, y)`; single-label closures keep each label's work entirely
//! inside its shard) hosted on one [`MultiQueryEngine`] at
//! `(shards = 4, workers = 4)`, fed a Zipf-skewed 13-label stream. The
//! static round-robin label→shard assignment co-locates heavy and light
//! labels blindly; the adaptive host watches its label-frequency sketch
//! and adopts the LPT assignment between epochs. Three runs per stream —
//! serial `(1, 1)` baseline, fixed `(4, 4)`, adaptive `(4, 4)` — with
//! **exact per-query result-count and determinism-fingerprint equality
//! asserted across all three**: rebalancing must be invisible in the
//! answer stream.
//!
//! The full run uses a *drifting* Zipf stream (the label permutation
//! rotates mid-stream) and gates on measured wall-clock balance: the
//! steady-state post-drift max/mean of per-shard `shard_nanos` — a
//! [`SETTLE_BATCHES`]-epoch window after the drift point is excluded
//! from both runs, so the gate measures the new equilibrium rather than
//! the deliberate hysteresis latency — must improve ≥ 1.3× under
//! adaptive rebalancing versus the fixed assignment. The per-shard
//! statistic is the **median per-epoch** sweep time over the post-drift
//! window, median-filtered again across [`FULL_PASSES`] passes: epochs
//! whose sweep thread was preempted mid-flight absorb other threads'
//! runtime into their wall span, and a handful of such epochs flip a
//! summed ratio on a busy or low-core host (the determinism assertions
//! still run on every pass). The quick
//! (CI smoke) run gates on the deterministic sketch-mass balance of a
//! pure-Zipf stream instead — wall-clock ratios are noise on shared CI
//! hosts, sketch mass is a pure function of the stream.
//!
//! **Replan section** — a drift probe: the same fleet shape on a serial
//! adaptive host, `maybe_replan()` polled every batch. The stream's
//! label permutation rotates a quarter of the way in; the drift signal
//! (total variation against each registration's baseline) must cross
//! the replan threshold and re-register at least one query, and the
//! replanned host's answer set must match a never-replanned static
//! host's exactly.
//!
//! `host_parallelism` records what the host actually granted — on a
//! single-CPU host the (4, 4) rows measure dispatch overhead, not
//! speedup, but every equality and balance-shape assertion still runs.

use criterion::{criterion_group, BenchmarkId, Criterion};
use sgq_core::engine::EngineOptions;
use sgq_core::sketch;
use sgq_datagen::zipf::{zipf_stream, ZipfConfig};
use sgq_multiquery::{MultiQueryEngine, QueryId};
use sgq_query::{parse_program, SgqQuery, WindowSpec};
use std::time::{Duration, Instant};

/// The 13-label alphabet; rank order is declaration order. Deliberately
/// *not* a multiple of the 4-shard configuration: blind round-robin
/// then parks four labels on shard 0 while the rest get three — the
/// generic mismatch any real label universe has with a shard count —
/// so there is genuine headroom for a mass-aware assignment to win.
const LABELS: [&str; 13] = [
    "l0", "l1", "l2", "l3", "l4", "l5", "l6", "l7", "l8", "l9", "l10", "l11", "l12",
];
/// Ingestion batch size (one epoch per batch).
const BATCH: usize = 64;
/// Zipf exponent: the head label carries ~25% of the mass — enough to
/// make blind round-robin grouping measurably lopsided, small enough
/// that the LPT assignment can still flatten it.
const SKEW: f64 = 0.75;
/// Mid-stream label-permutation rotation (full mode and replan probe).
/// Four rotates the post-drift head label onto the four-label
/// round-robin shard — the static assignment's bad case, which the
/// sketch-driven LPT reassignment sidesteps by construction.
const DRIFT_SHIFT: usize = 4;
/// Epochs after the drift point before the post-drift balance window
/// opens: the rebalancer needs `REBALANCE_CHECK_EPOCHS × REBALANCE_STREAK`
/// epochs to *detect* sustained drift plus a few to re-settle, and the
/// gate measures steady-state balance under the new distribution, not
/// the detection latency (which hysteresis makes deliberate, so noise
/// cannot thrash the assignment). Both runs skip the same window.
const SETTLE_BATCHES: usize = 48;
/// Full-mode measurement passes for the wall-clock balance gate: the
/// fixed/adaptive pair is measured this many times and the gate uses
/// the element-wise per-shard median (across passes) of each pass's
/// median per-epoch sweep nanos. Each run's per-shard work is
/// deterministic — the rebalancer's decisions replay identically on
/// the same stream — so cross-pass disagreement is pure measurement
/// noise, and the double median discards it even when one whole pass
/// ran degraded. Every pass still asserts the determinism invariants.
const FULL_PASSES: usize = 7;

fn quick() -> bool {
    std::env::var_os("SGQ_BENCH_QUICK").is_some()
}

fn edges() -> usize {
    if quick() {
        6_144
    } else {
        24_576
    }
}

fn opts(shards: usize, workers: usize, adaptive: bool) -> EngineOptions {
    EngineOptions {
        materialize_paths: false,
        shards,
        workers,
        adaptive,
        ..Default::default()
    }
}

/// One per-label Kleene query fleet: `Ans(x, y) <- li+(x, y).` for every
/// label, all on the same sliding window.
fn fleet(window: WindowSpec) -> Vec<SgqQuery> {
    LABELS
        .iter()
        .map(|l| {
            let text = format!("Ans(x, y) <- {l}+(x, y).");
            SgqQuery::new(parse_program(&text).unwrap(), window)
        })
        .collect()
}

struct Run {
    secs: f64,
    edges: usize,
    results: Vec<usize>,
    fingerprint: [u64; 9],
    rebalances: u64,
    /// Cumulative per-shard sweep nanos over the whole run.
    total_nanos: Vec<u64>,
    /// Per-shard sweep nanos after the drift point plus the settle
    /// window (equals `total_nanos` when the stream does not drift).
    post_nanos: Vec<u64>,
    /// Per-shard **median per-epoch** sweep nanos over the post-drift
    /// window (empty when the stream does not drift). The balance gate's
    /// statistic: an epoch whose sweep thread got preempted mid-flight
    /// absorbs other threads' runtime into its wall span, and a handful
    /// of such epochs can flip a summed ratio on a busy or low-core
    /// host — the per-epoch median discards them.
    post_epoch_median: Vec<u64>,
    /// The final label → shard assignment, sorted by label id.
    assignment: Vec<(u32, usize)>,
    /// Per-label sketch masses at the end of the run (adaptive runs
    /// only; empty otherwise). Deterministic: a pure function of the
    /// ingested stream.
    label_masses: Vec<(u32, u64)>,
}

fn run_fleet(
    raw: &sgq_datagen::RawStream,
    window: WindowSpec,
    shards: usize,
    workers: usize,
    adaptive: bool,
    drift_batch: Option<usize>,
) -> Run {
    let mut host = MultiQueryEngine::with_options(opts(shards, workers, adaptive));
    let ids: Vec<QueryId> = fleet(window).iter().map(|q| host.register(q)).collect();
    let stream = sgq_datagen::resolve(raw, host.labels());
    let sges = stream.sges();
    let mut pre_nanos: Vec<u64> = Vec::new();
    let mut post_epochs: Vec<Vec<u64>> = Vec::new();
    let started = Instant::now();
    for (bi, chunk) in sges.chunks(BATCH).enumerate() {
        host.ingest_batch(chunk);
        if Some(bi + 1) == drift_batch {
            pre_nanos = host.shard_nanos_by_shard().to_vec();
        }
        if drift_batch.is_some_and(|d| bi + 1 > d) {
            let last = host.shard_nanos_last();
            if !last.is_empty() {
                post_epochs.push(last.to_vec());
            }
        }
    }
    let secs = started.elapsed().as_secs_f64();
    let total_nanos = host.shard_nanos_by_shard().to_vec();
    let post_epoch_median: Vec<u64> = if post_epochs.is_empty() {
        Vec::new()
    } else {
        (0..post_epochs[0].len())
            .map(|s| {
                let mut obs: Vec<u64> = post_epochs.iter().map(|e| e[s]).collect();
                obs.sort_unstable();
                obs[obs.len() / 2]
            })
            .collect()
    };
    let post_nanos: Vec<u64> = if pre_nanos.is_empty() {
        total_nanos.clone()
    } else {
        total_nanos
            .iter()
            .zip(&pre_nanos)
            .map(|(t, p)| t.saturating_sub(*p))
            .collect()
    };
    let mut assignment: Vec<(u32, usize)> = host
        .shard_assignment()
        .iter()
        .map(|(l, &s)| (l.0, s))
        .collect();
    assignment.sort_unstable();
    let mut label_masses: Vec<(u32, u64)> = if adaptive {
        host.sketch()
            .snapshot_masses()
            .iter()
            .map(|(l, &m)| (l.0, m))
            .collect()
    } else {
        Vec::new()
    };
    label_masses.sort_unstable();
    Run {
        secs,
        edges: sges.len(),
        results: ids.iter().map(|id| host.results(*id).len()).collect(),
        fingerprint: host.exec_stats().determinism_fingerprint(),
        rebalances: host.rebalances(),
        total_nanos,
        post_nanos,
        post_epoch_median,
        assignment,
        label_masses,
    }
}

/// Weighs `masses` under a label → shard assignment: the deterministic
/// balance comparison both gates share.
fn loads_under(assignment: &[(u32, usize)], masses: &[(u32, u64)], shards: usize) -> Vec<u64> {
    let mut loads = vec![0u64; shards];
    for &(label, mass) in masses {
        if let Some(&(_, s)) = assignment.iter().find(|&&(l, _)| l == label) {
            loads[s] += mass;
        }
    }
    loads
}

/// max/mean shard balance as a float (1.0 = perfectly balanced).
fn imbalance(loads: &[u64]) -> f64 {
    sketch::imbalance_milli(loads) as f64 / 1000.0
}

/// The balance-section stream: pure Zipf in quick mode (deterministic
/// mass gate), drifting Zipf in full mode (wall-clock nanos gate).
fn balance_stream() -> (sgq_datagen::RawStream, Option<usize>) {
    let edges = edges();
    let cfg = ZipfConfig::new(LABELS.to_vec(), 6_000, edges).with_skew(SKEW);
    if quick() {
        (zipf_stream(&cfg), None)
    } else {
        let drift_at = edges / 2;
        (
            zipf_stream(&cfg.with_drift(drift_at, DRIFT_SHIFT)),
            Some(drift_at / BATCH + SETTLE_BATCHES),
        )
    }
}

fn balance_window() -> WindowSpec {
    let span = edges() as u64;
    WindowSpec::new(span / 6, (span / 48).max(1))
}

/// The drift probe: serial adaptive host, `maybe_replan` polled per
/// batch. Returns (replans, final drift chain, adaptive pair set ==
/// static pair set).
fn replan_probe() -> (usize, bool) {
    const PROBE_EDGES: usize = 4_096;
    let cfg = ZipfConfig::new(LABELS.to_vec(), 4_000, PROBE_EDGES)
        .with_skew(1.4)
        .with_drift(PROBE_EDGES / 4, DRIFT_SHIFT);
    let raw = zipf_stream(&cfg);
    // Full-span window: catch-up after a replan answers from the whole
    // retained window, so the answer sets stay comparable.
    let window = WindowSpec::new(PROBE_EDGES as u64, (PROBE_EDGES / 8) as u64);

    let mut adaptive_host = MultiQueryEngine::with_options(opts(1, 1, true));
    let mut static_host = MultiQueryEngine::with_options(opts(1, 1, false));
    let mut ids_a: Vec<QueryId> = fleet(window)
        .iter()
        .map(|q| adaptive_host.register(q))
        .collect();
    let ids_s: Vec<QueryId> = fleet(window)
        .iter()
        .map(|q| static_host.register(q))
        .collect();

    let stream = sgq_datagen::resolve(&raw, adaptive_host.labels());
    let sges = stream.sges();
    let mut replans = 0usize;
    for chunk in sges.chunks(BATCH) {
        adaptive_host.ingest_batch(chunk);
        static_host.ingest_batch(chunk);
        for (old, new) in adaptive_host.maybe_replan() {
            replans += 1;
            for id in ids_a.iter_mut() {
                if *id == old {
                    *id = new;
                }
            }
        }
    }
    let pairs = |host: &MultiQueryEngine, ids: &[QueryId]| -> Vec<Vec<(u64, u64)>> {
        ids.iter()
            .map(|id| {
                let mut v: Vec<(u64, u64)> = host
                    .results(*id)
                    .iter()
                    .map(|s| (s.src.0, s.trg.0))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect()
    };
    let answers_match = pairs(&adaptive_host, &ids_a) == pairs(&static_host, &ids_s);
    (replans, answers_match)
}

fn bench_adaptive(c: &mut Criterion) {
    if quick() || std::env::var_os("SGQ_BENCH_SUMMARY_ONLY").is_some() {
        return;
    }
    let (raw, drift_batch) = balance_stream();
    let window = balance_window();
    let mut group = c.benchmark_group("adaptive");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for adaptive in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("s4w4", if adaptive { "adaptive" } else { "fixed" }),
            &adaptive,
            |b, &adaptive| {
                b.iter(|| run_fleet(&raw, window, 4, 4, adaptive, drift_batch));
            },
        );
    }
    group.finish();
}

fn emit_json_summary() {
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (raw, drift_batch) = balance_stream();
    let window = balance_window();

    let serial = run_fleet(&raw, window, 1, 1, false, drift_batch);
    let passes = if quick() { 1 } else { FULL_PASSES };
    let mut fixed_passes: Vec<Run> = Vec::new();
    let mut adaptive_passes: Vec<Run> = Vec::new();
    for _ in 0..passes {
        let f = run_fleet(&raw, window, 4, 4, false, drift_batch);
        let a = run_fleet(&raw, window, 4, 4, true, drift_batch);

        // Rebalancing must be invisible in the answer stream: exact
        // per-query result counts and the deterministic fingerprint
        // match the serial baseline for the fixed AND the adaptive run,
        // on every pass.
        for (name, run) in [("fixed", &f), ("adaptive", &a)] {
            assert_eq!(
                serial.results, run.results,
                "{name} (4,4) changed per-query result counts vs serial baseline"
            );
            assert_eq!(
                serial.fingerprint, run.fingerprint,
                "{name} (4,4) changed the deterministic executor fingerprint"
            );
        }
        assert_eq!(f.rebalances, 0, "non-adaptive host must never rebalance");
        assert!(
            a.rebalances >= 1,
            "adaptive host never rebalanced a skewed stream"
        );
        fixed_passes.push(f);
        adaptive_passes.push(a);
    }
    // Second noise filter, across passes (see [`FULL_PASSES`]): the
    // element-wise median of each shard's per-epoch median recovers the
    // shard's deterministic steady-state cost even when a whole pass
    // ran degraded (frequency scaling, a co-tenant burst).
    let median = |runs: &[Run]| -> Vec<u64> {
        (0..runs[0].post_epoch_median.len())
            .map(|i| {
                let mut obs: Vec<u64> = runs.iter().map(|r| r.post_epoch_median[i]).collect();
                obs.sort_unstable();
                obs[obs.len() / 2]
            })
            .collect()
    };
    let (fixed_median, adaptive_median) = (median(&fixed_passes), median(&adaptive_passes));
    let mut fixed = fixed_passes.swap_remove(0);
    let mut adaptive = adaptive_passes.swap_remove(0);
    fixed.post_epoch_median = fixed_median;
    adaptive.post_epoch_median = adaptive_median;

    // Balance gates. Quick: deterministic sketch-mass balance under the
    // final assignments (imbalance of the fixed round-robin grouping
    // over the same masses serves as the fixed side). Full: measured
    // per-shard median per-epoch sweep nanos over the post-drift
    // window — the acceptance gate. (Quick mode has no drift window, so
    // its informational nanos figure is the whole-run total.)
    let (fixed_nanos_imb, adaptive_nanos_imb) = if quick() {
        (
            imbalance(&fixed.post_nanos),
            imbalance(&adaptive.post_nanos),
        )
    } else {
        (
            imbalance(&fixed.post_epoch_median),
            imbalance(&adaptive.post_epoch_median),
        )
    };
    let nanos_gain = fixed_nanos_imb / adaptive_nanos_imb.max(1e-9);
    // Deterministic mass comparison: the adaptive run's end-of-stream
    // sketch masses weighed under the fixed round-robin assignment
    // versus under the adaptive run's adopted assignment.
    let fixed_mass_imb = imbalance(&loads_under(&fixed.assignment, &adaptive.label_masses, 4));
    let adaptive_mass_imb = imbalance(&loads_under(
        &adaptive.assignment,
        &adaptive.label_masses,
        4,
    ));
    let mass_gain = fixed_mass_imb / adaptive_mass_imb.max(1e-9);
    if quick() {
        // Wall-clock ratios are noise on shared CI hosts; gate on the
        // deterministic sketch-mass balance instead.
        assert!(
            mass_gain >= 1.2,
            "sketch-mass balance gain {mass_gain:.2} below the 1.2x quick gate \
             (round-robin {fixed_mass_imb:.2} vs adaptive {adaptive_mass_imb:.2})"
        );
    } else {
        assert!(
            nanos_gain >= 1.3,
            "post-drift shard balance gain {nanos_gain:.2} below the 1.3x gate \
             (fixed {fixed_nanos_imb:.2} vs adaptive {adaptive_nanos_imb:.2})"
        );
    }

    let (replans, answers_match) = replan_probe();
    assert!(replans >= 1, "drift probe never triggered a replan");
    assert!(
        answers_match,
        "replanned host's answer sets diverged from the static host"
    );

    let row = |name: &str, run: &Run, shards: usize, workers: usize| {
        format!(
            concat!(
                "    {{\"run\": \"{}\", \"shards\": {}, \"workers\": {}, ",
                "\"edges_per_s\": {:.0}, \"results\": {}, ",
                "\"rebalances\": {}, \"shard_nanos\": {:?}, ",
                "\"post_drift_shard_nanos\": {:?}, ",
                "\"post_epoch_median_nanos\": {:?}, ",
                "\"shard_nanos_imbalance\": {:.3}, ",
                "\"post_drift_imbalance\": {:.3}}}"
            ),
            name,
            shards,
            workers,
            run.edges as f64 / run.secs,
            run.results.iter().sum::<usize>(),
            run.rebalances,
            run.total_nanos,
            run.post_nanos,
            run.post_epoch_median,
            imbalance(&run.total_nanos),
            if run.post_epoch_median.is_empty() {
                imbalance(&run.post_nanos)
            } else {
                imbalance(&run.post_epoch_median)
            },
        )
    };
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"adaptive\",\n",
            "  \"quick\": {},\n",
            "  \"host_parallelism\": {},\n",
            "  \"note\": \"13-label Zipf(skew {}) stream, fleet of 13 ",
            "single-label Kleene queries at batch {}; quick mode runs the ",
            "pure-Zipf stream and gates on deterministic sketch-mass ",
            "balance, full mode drifts the label permutation by {} at the ",
            "stream midpoint and gates steady-state post-drift max/mean ",
            "shard_nanos (a {}-epoch settle window after the drift point ",
            "is excluded from both runs; the per-shard statistic is the ",
            "median per-epoch sweep nanos over the post-drift window, ",
            "median-filtered again across {} measurement passes, so ",
            "epochs whose sweep thread was preempted mid-flight cannot ",
            "flip the ratio) >= 1.3x fixed-vs-adaptive; ",
            "per-query result counts and the ",
            "determinism fingerprint are asserted identical across serial, ",
            "fixed, and adaptive runs; wall-clock ratios require ",
            "host_parallelism > 1 to reflect real speedup\",\n",
            "  \"stream_edges\": {},\n",
            "  \"post_window_from_batch\": {},\n",
            "  \"balance_gain_nanos\": {:.3},\n",
            "  \"balance_gain_mass\": {},\n",
            "  \"replans\": {},\n",
            "  \"rows\": [\n{}\n  ]\n}}\n"
        ),
        quick(),
        host_parallelism,
        SKEW,
        BATCH,
        DRIFT_SHIFT,
        SETTLE_BATCHES,
        FULL_PASSES,
        edges(),
        drift_batch
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".into()),
        nanos_gain,
        // The mass comparison only describes a stationary stream; under
        // drift the cumulative masses average both phases and stop
        // reflecting either assignment's real load.
        if quick() {
            format!("{mass_gain:.3}")
        } else {
            "null".into()
        },
        replans,
        [
            row("serial", &serial, 1, 1),
            row("fixed", &fixed, 4, 4),
            row("adaptive", &adaptive, 4, 4),
        ]
        .join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json");
    std::fs::write(path, &json).expect("write BENCH_adaptive.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_adaptive);

fn main() {
    if std::env::var_os("SGQ_BENCH_SUMMARY_ONLY").is_none() {
        benches();
    }
    emit_json_summary();
}
