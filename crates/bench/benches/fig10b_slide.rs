//! Figure 10b (§7.3): SGA sensitivity to the slide interval β (3h–4d,
//! T = 30 days) on the SO-like stream. Expected shape: *flat* — the SGA
//! operators are tuple-at-a-time and eager, so batch size does not change
//! the work per edge (unlike DD, Figure 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgq_bench::{run_query, Scale, System};
use sgq_datagen::workloads::Dataset;
use std::time::Duration;

fn bench_slide_sweep(c: &mut Criterion) {
    let scale = Scale::bench().scaled(0.5);
    let raw = scale.stream(Dataset::So);
    let mut group = c.benchmark_group("fig10b_slide");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [2usize, 6] {
        for (name, num, den) in [
            ("3h", 1u64, 8u64),
            ("12h", 1, 2),
            ("1d", 1, 1),
            ("4d", 4, 1),
        ] {
            let window = scale.window(30, num, den);
            group.bench_with_input(
                BenchmarkId::new(format!("Q{n}"), format!("b={name}")),
                &(n, window),
                |b, &(n, window)| {
                    b.iter(|| run_query(n, Dataset::So, &raw, window, System::Sga));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_slide_sweep);
criterion_main!(benches);
