//! Label-sharded shard-subgraph execution: the determinism matrix
//! measured at shards ∈ {1, 2, 4} × workers ∈ {1, 4}.
//!
//! Each measured configuration hosts `VARIANT_DAYS.len()` window-size
//! variants of query Qn on one [`MultiQueryEngine`] (the same
//! parameter-sweep fleets as `BENCH_parallel`), ingesting the stream
//! through the drain-only batch path at batch size 256. With `shards >
//! 1` every label's WSCANs — and the operator closure reachable only
//! from them — execute whole epochs as independent shard-subgraph jobs,
//! synchronizing only at the recorded cross-shard merge points, so
//! unlike per-level dispatch the shards never wait for each other
//! between levels.
//!
//! Alongside wall clock, the JSON rows record the shard-shape counters
//! (`shard_subgraphs` = populated shard groups, `merge_points`,
//! `cross_shard_deliveries`, `mean_shard_width`, `shard_occupancy`,
//! `shard_time_share`) plus `host_parallelism`, the number of CPUs the
//! host actually granted. **On a single-CPU host the multi-worker rows
//! cannot show wall-clock speedup** (threads time-slice one core); the
//! cross-configuration equality assertions — per-variant result counts
//! and the deterministic executor fingerprint, checked against the
//! `(1, 1)` baseline for every row — still validate the machinery, and
//! the recorded speedups are honest measurements of whatever the host
//! provides.
//!
//! Set `SGQ_BENCH_QUICK=1` for a truncated smoke pass (CI): shard/worker
//! grid {1, 4} × {1, 4}, every equality assertion still runs, and the
//! JSON is written with `"quick": true` so the workflow artifact carries
//! the smoke evidence without being mistaken for a full run.

use criterion::{criterion_group, BenchmarkId, Criterion};
use sgq_bench::{window_variant_fleet, Scale, VARIANT_DAYS};
use sgq_core::engine::EngineOptions;
use sgq_core::metrics::ExecStats;
use sgq_datagen::workloads::Dataset;
use sgq_multiquery::MultiQueryEngine;
use std::time::{Duration, Instant};

/// Ingestion batch size (matches `BENCH_parallel`).
const BATCH: usize = 256;
/// Timed passes per configuration; best is reported.
const PASSES: usize = 2;

fn quick() -> bool {
    std::env::var_os("SGQ_BENCH_QUICK").is_some()
}

/// The `(shards, workers)` grid. `(1, 1)` is the determinism baseline
/// every other configuration is asserted against.
fn configs() -> Vec<(usize, usize)> {
    let shard_counts: &[usize] = if quick() { &[1, 4] } else { &[1, 2, 4] };
    let worker_counts: &[usize] = &[1, 4];
    let mut out = Vec::new();
    for &s in shard_counts {
        for &w in worker_counts {
            out.push((s, w));
        }
    }
    out
}

fn scale() -> Scale {
    if quick() {
        Scale::bench().scaled(0.1)
    } else {
        Scale::bench().scaled(0.3)
    }
}

fn opts(shards: usize, workers: usize) -> EngineOptions {
    EngineOptions {
        materialize_paths: false,
        shards,
        workers,
        ..Default::default()
    }
}

struct Run {
    secs: f64,
    edges: usize,
    results: Vec<usize>,
    stats: ExecStats,
    shard_subgraphs: usize,
    merge_points: usize,
}

fn run_fleet(
    n: usize,
    ds: Dataset,
    scale: &Scale,
    raw: &sgq_datagen::RawStream,
    shards: usize,
    workers: usize,
) -> Run {
    let mut host = MultiQueryEngine::with_options(opts(shards, workers));
    let ids: Vec<_> = window_variant_fleet(n, ds, scale)
        .iter()
        .map(|q| host.register(q))
        .collect();
    let shard_subgraphs = host.shard_widths().iter().filter(|&&w| w > 0).count();
    let merge_points = host.merge_point_count();
    let stream = sgq_datagen::resolve(raw, host.labels());
    let sges = stream.sges();
    let started = Instant::now();
    for chunk in sges.chunks(BATCH) {
        host.ingest_batch(chunk);
    }
    let secs = started.elapsed().as_secs_f64();
    Run {
        secs,
        edges: sges.len(),
        results: ids.iter().map(|id| host.results(*id).len()).collect(),
        stats: host.exec_stats(),
        shard_subgraphs,
        merge_points,
    }
}

fn bench_sharding(c: &mut Criterion) {
    if quick() || std::env::var_os("SGQ_BENCH_SUMMARY_ONLY").is_some() {
        return;
    }
    let scale = scale();
    let mut group = c.benchmark_group("sharding");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    let raw = scale.stream(Dataset::So);
    for n in [1, 6] {
        for (s, w) in configs() {
            group.bench_with_input(
                BenchmarkId::new(format!("q{n}"), format!("s{s}w{w}")),
                &(s, w),
                |b, &(s, w)| {
                    b.iter(|| run_fleet(n, Dataset::So, &scale, &raw, s, w));
                },
            );
        }
    }
    group.finish();
}

/// One timed full-stream pass per configuration, summarized as JSON, with
/// **cross-configuration equality asserted on every pass**: per-variant
/// result counts and the deterministic executor fingerprint must match
/// the `(shards = 1, workers = 1)` baseline exactly.
fn emit_json_summary() {
    let scale = scale();
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut rows: Vec<String> = Vec::new();
    let mut stream_edges: Vec<String> = Vec::new();
    for ds in [Dataset::So, Dataset::Snb] {
        let raw = scale.stream(ds);
        stream_edges.push(format!("\"{}\": {}", ds.name(), raw.len()));
        for n in 1..=7 {
            let mut baseline: Option<(f64, Vec<usize>, [u64; 9])> = None;
            for (s, w) in configs() {
                let mut best: Option<Run> = None;
                for _ in 0..PASSES {
                    let run = run_fleet(n, ds, &scale, &raw, s, w);
                    match &baseline {
                        None => {
                            baseline = Some((
                                run.secs,
                                run.results.clone(),
                                run.stats.determinism_fingerprint(),
                            ))
                        }
                        Some((_, results, fingerprint)) => {
                            assert_eq!(
                                results,
                                &run.results,
                                "{} Q{n}: shards={s} workers={w} changed per-variant result counts",
                                ds.name()
                            );
                            assert_eq!(
                                fingerprint,
                                &run.stats.determinism_fingerprint(),
                                "{} Q{n}: shards={s} workers={w} changed deterministic exec counters",
                                ds.name()
                            );
                        }
                    }
                    if best.as_ref().is_none_or(|b| run.secs < b.secs) {
                        best = Some(run);
                    }
                }
                let run = best.expect("at least one pass");
                // Refresh the baseline time with the serial config's best
                // pass so speedups compare best against best.
                if (s, w) == (1, 1) {
                    if let Some(b) = baseline.as_mut() {
                        b.0 = run.secs;
                    }
                }
                let base_secs = baseline.as_ref().expect("baseline set").0;
                let stats = run.stats;
                rows.push(format!(
                    concat!(
                        "    {{\"dataset\": \"{}\", \"query\": \"Q{}\", ",
                        "\"shards\": {}, \"workers\": {}, ",
                        "\"edges_per_s\": {:.0}, \"speedup_vs_serial\": {:.3}, ",
                        "\"results\": {}, \"shard_subgraphs\": {}, ",
                        "\"merge_points\": {}, \"cross_shard_deliveries\": {}, ",
                        "\"mean_shard_width\": {:.2}, \"shard_occupancy\": {:.2}, ",
                        "\"shard_time_share\": {:.2}}}"
                    ),
                    ds.name(),
                    n,
                    s,
                    w,
                    run.edges as f64 / run.secs,
                    base_secs / run.secs,
                    run.results.iter().sum::<usize>(),
                    run.shard_subgraphs,
                    run.merge_points,
                    stats.cross_shard_deliveries,
                    stats.mean_shard_width(),
                    stats.shard_occupancy(s),
                    if run.secs <= 0.0 {
                        0.0
                    } else {
                        (stats.shard_nanos as f64 / 1e9) / run.secs
                    },
                ));
            }
        }
    }
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"sharding\",\n",
            "  \"quick\": {},\n",
            "  \"host_parallelism\": {},\n",
            "  \"note\": \"fleet = {} window-size variants of each query ",
            "on one shared dataflow, drain-only batch ingestion at batch ",
            "{}; per-variant result counts and determinism fingerprints ",
            "are asserted equal across every (shards, workers) ",
            "configuration; wall-clock speedup requires host_parallelism ",
            "> 1 — on a single-CPU host the shards>1 rows measure ",
            "shard-dispatch overhead, not speedup\",\n",
            "  \"stream_edges\": {{{}}},\n  \"window_variant_days\": {:?},\n",
            "  \"rows\": [\n{}\n  ]\n}}\n"
        ),
        quick(),
        host_parallelism,
        VARIANT_DAYS.len(),
        BATCH,
        stream_edges.join(", "),
        VARIANT_DAYS,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharding.json");
    std::fs::write(path, &json).expect("write BENCH_sharding.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_sharding);

fn main() {
    if std::env::var_os("SGQ_BENCH_SUMMARY_ONLY").is_none() {
        benches();
    }
    emit_json_summary();
}
