//! Batched-vs-tuple execution ablation: the same SO stream driven through
//! `Engine::process_batch` at batch sizes 1 / 16 / 256 / 4096 (batch size
//! 1 *is* per-tuple execution through the same epoch scheduler).
//!
//! Alongside the criterion timings, a machine-readable
//! `BENCH_batching.json` summary is written to the workspace root with
//! per-size throughput and the executor's dispatch-amortisation counters
//! (`ExecStats`), so the perf trajectory records *why* batching wins
//! (deltas per operator invocation, effective epoch size), not just wall
//! clock.
//!
//! Set `SGQ_BENCH_QUICK=1` to run a truncated-stream smoke pass (CI): the
//! equivalence assertions still run, no JSON is written.

use criterion::{criterion_group, BenchmarkId, Criterion};
use sgq_bench::Scale;
use sgq_core::engine::{DispatchMode, Engine, EngineOptions};
use sgq_core::metrics::ExecStats;
use sgq_datagen::workloads::{self, Dataset};
use sgq_query::{SgqQuery, WindowSpec};
use std::time::{Duration, Instant};

/// The ablation axis. Batch size **1** runs the tuple-at-a-time reference
/// executor ([`DispatchMode::Tuple`]: `on_delta` per tuple, singleton
/// deliveries, one deep copy per successor — the pre-batching delivery
/// loop's cost model; its per-delivery bookkeeping is a small constant
/// dearer than the historical `VecDeque` loop, which the operator-bound
/// headline queries are insensitive to). Larger sizes run the
/// epoch-batched executor at that ingestion batch size.
const BATCH_SIZES: [usize; 4] = [1, 16, 256, 4096];
/// The measured queries: Q1 (pure path), Q5 (pure join), Q6 (path ⋈ join).
const QUERIES: [usize; 3] = [1, 5, 6];
/// Timed passes per configuration in the JSON summary; the best pass is
/// reported (the bench boxes are small shared VMs — single passes are
/// noise-dominated, best-of-N converges to the machine's real rate).
const PASSES: usize = 5;

// Default engine options (R3 materialized paths — the paper-faithful
// configuration, where tuple-at-a-time dispatch pays a deep path-payload
// clone per successor delivery and its bursty alloc/free cycle thrashes
// the allocator); only the dispatch mode varies along the ablation axis.
fn opts(batch: usize) -> EngineOptions {
    EngineOptions {
        dispatch: if batch <= 1 {
            DispatchMode::Tuple
        } else {
            DispatchMode::Epoch
        },
        ..Default::default()
    }
}

fn quick() -> bool {
    std::env::var_os("SGQ_BENCH_QUICK").is_some()
}

fn scale() -> Scale {
    if quick() {
        Scale::bench().scaled(0.1)
    } else {
        Scale::bench()
    }
}

struct Row {
    query: usize,
    batch: usize,
    edges_per_s: f64,
    results: u64,
    stats: ExecStats,
}

fn run_one(
    n: usize,
    raw: &sgq_datagen::RawStream,
    window: WindowSpec,
    batch: usize,
) -> (f64, u64, ExecStats, Vec<(u64, u64)>) {
    let q = SgqQuery::new(workloads::query(n, Dataset::So), window);
    let mut engine = Engine::from_query_with(&q, opts(batch));
    let stream = sgq_datagen::resolve(raw, engine.labels());
    let started = Instant::now();
    let stats = engine.run_batched_count(stream.sges(), batch);
    let secs = started.elapsed().as_secs_f64();
    // The answer set at end-of-stream, for cross-batch-size equivalence.
    let span = raw.events.last().map(|e| e.3).unwrap_or(0);
    let mut answers: Vec<(u64, u64)> = engine
        .answer_at(span)
        .into_iter()
        .map(|(a, b)| (a.0, b.0))
        .collect();
    answers.sort_unstable();
    (
        stats.edges as f64 / secs,
        stats.results,
        engine.exec_stats(),
        answers,
    )
}

fn bench_batching(c: &mut Criterion) {
    // `SGQ_BENCH_SUMMARY_ONLY=1` skips the criterion timing loops and goes
    // straight to the JSON summary passes.
    if quick() || std::env::var_os("SGQ_BENCH_SUMMARY_ONLY").is_some() {
        return;
    }
    let scale = scale();
    let raw = scale.stream(Dataset::So);
    let window = scale.default_window();
    let mut group = c.benchmark_group("batching");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for n in QUERIES {
        for batch in BATCH_SIZES {
            group.bench_with_input(
                BenchmarkId::new(format!("q{n}"), batch),
                &batch,
                |b, &batch| {
                    b.iter(|| run_one(n, &raw, window, batch));
                },
            );
        }
    }
    group.finish();
}

/// One timed full-stream pass per configuration, summarized as JSON, with
/// batched-vs-tuple equivalence asserted on the final answer set.
fn emit_json_summary() {
    let scale = scale();
    let raw = scale.stream(Dataset::So);
    let window = scale.default_window();
    let mut rows: Vec<Row> = Vec::new();
    for n in QUERIES {
        let mut tuple_answers: Option<Vec<(u64, u64)>> = None;
        for batch in BATCH_SIZES {
            let mut best: Option<(f64, u64, ExecStats)> = None;
            for _ in 0..PASSES {
                let (edges_per_s, results, stats, answers) = run_one(n, &raw, window, batch);
                match &tuple_answers {
                    None => tuple_answers = Some(answers),
                    Some(expect) => assert_eq!(
                        expect, &answers,
                        "Q{n}: batch size {batch} diverged from per-tuple answers"
                    ),
                }
                if best.as_ref().is_none_or(|(b, _, _)| edges_per_s > *b) {
                    best = Some((edges_per_s, results, stats));
                }
            }
            let (edges_per_s, results, stats) = best.expect("at least one pass");
            rows.push(Row {
                query: n,
                batch,
                edges_per_s,
                results,
                stats,
            });
        }
    }

    // Recorded (not asserted — wall-clock ratios flake on noisy shared
    // VMs): batch ≥256 beats tuple-at-a-time by ≥1.5× on the path-heavy
    // queries; the JSON rows carry the evidence for the perf trajectory.
    for n in QUERIES {
        let tput = |b: usize| {
            rows.iter()
                .find(|r| r.query == n && r.batch == b)
                .map(|r| r.edges_per_s)
                .unwrap()
        };
        let speedup = tput(256) / tput(1);
        println!("Q{n}: batch-256 speedup over per-tuple = {speedup:.2}x");
    }

    if quick() {
        println!("quick mode: skipping BENCH_batching.json");
        return;
    }
    let body = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"query\": \"Q{}\", \"batch_size\": {}, \"edges_per_s\": {:.0}, ",
                    "\"results\": {}, \"deltas_per_invocation\": {:.2}, ",
                    "\"mean_epoch_input\": {:.2}, \"operator_invocations\": {}, ",
                    "\"fanout_deliveries\": {}}}"
                ),
                r.query,
                r.batch,
                r.edges_per_s,
                r.results,
                r.stats.deltas_per_invocation(),
                r.stats.mean_epoch_input(),
                r.stats.operator_invocations,
                r.stats.fanout_deliveries,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"batching\",\n  \"dataset\": \"SO\",\n",
            "  \"stream_edges\": {},\n  \"window\": {{\"size\": {}, \"slide\": {}}},\n",
            "  \"rows\": [\n{}\n  ]\n}}\n"
        ),
        raw.len(),
        window.size,
        window.slide,
        body
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batching.json");
    std::fs::write(path, &json).expect("write BENCH_batching.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_batching);

fn main() {
    benches();
    emit_json_summary();
}
