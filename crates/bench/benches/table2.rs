//! Table 2 (§7.2): throughput of SGA vs the DD baseline for Q1–Q7 on the
//! SO-like and SNB-like streams, |W| = 30 days, β = 1 day.
//!
//! Criterion reports time per full stream; throughput = edges/time. The
//! expected *shape* (the paper's): SGA ≥ DD on the cyclic SO graph for
//! every query (dramatically for Q5), while DD is competitive or better
//! on SNB's linear path queries Q1–Q4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgq_bench::{run_query, Scale, System};
use sgq_datagen::workloads::Dataset;
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let scale = Scale::bench().scaled(0.5);
    let window = scale.default_window();
    let mut group = c.benchmark_group("table2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for ds in [Dataset::So, Dataset::Snb] {
        let raw = scale.stream(ds);
        for n in 1..=7 {
            for sys in [System::Sga, System::Dd] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/Q{n}", ds.name()), sys.name()),
                    &(n, ds, sys),
                    |b, &(n, ds, sys)| {
                        b.iter(|| run_query(n, ds, &raw, window, sys));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
