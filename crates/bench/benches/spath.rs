//! Bulk S-PATH expansion ablation: per-tuple Expand/Propagate
//! (`DispatchMode::Tuple`, batch size 1) versus the frontier-at-once
//! epoch traversal (`DispatchMode::Epoch`) at ingestion batch sizes
//! 16 / 256 / 4096, on the S-PATH-heavy workload queries Q1 / Q6 / Q7
//! over both SO and SNB streams.
//!
//! Alongside the criterion timings, a machine-readable `BENCH_spath.json`
//! summary is written to the workspace root. Each row carries throughput
//! *and* the frontier counters that explain it: `nodes_settled` (bulk
//! settles each product-graph node at most once per epoch) versus
//! `nodes_improved` (each applied interval change — the per-tuple path's
//! improvement chains), plus heap pushes and adjacency edges scanned.
//!
//! Every pass asserts exact result-count and final-answer-set equality
//! against the per-tuple baseline, the `nodes_settled <= nodes_improved`
//! counter invariant on every row, and bulk determinism-fingerprint
//! equality across `(shards, workers)` = (1,1) vs (4,4).
//!
//! Set `SGQ_BENCH_QUICK=1` for a truncated-stream smoke pass (CI): all
//! assertions still run and the JSON is written with `"quick": true`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use sgq_bench::Scale;
use sgq_core::engine::{DispatchMode, Engine, EngineOptions};
use sgq_core::obs::FrontierStats;
use sgq_datagen::workloads::{self, Dataset};
use sgq_query::{SgqQuery, WindowSpec};
use std::time::{Duration, Instant};

/// The ablation axis: batch size 1 is the per-tuple reference executor
/// (`on_delta` per tuple); larger sizes run the bulk frontier pass once
/// per contiguous insert run.
const BATCH_SIZES: [usize; 4] = [1, 16, 256, 4096];
/// S-PATH-heavy queries: Q1 (pure closure), Q6 (closure ⋈ pattern),
/// Q7 (closure over a derived relation).
const QUERIES: [usize; 3] = [1, 6, 7];
const DATASETS: [Dataset; 2] = [Dataset::So, Dataset::Snb];
/// Timed passes per configuration; the best pass is reported (shared-VM
/// noise — best-of-N converges to the machine's real rate).
const PASSES: usize = 3;

fn opts(batch: usize, shards: usize, workers: usize) -> EngineOptions {
    EngineOptions {
        dispatch: if batch <= 1 {
            DispatchMode::Tuple
        } else {
            DispatchMode::Epoch
        },
        shards,
        workers,
        ..Default::default()
    }
}

fn quick() -> bool {
    std::env::var_os("SGQ_BENCH_QUICK").is_some()
}

fn scale() -> Scale {
    if quick() {
        Scale::bench().scaled(0.1)
    } else {
        Scale::bench()
    }
}

struct Pass {
    edges_per_s: f64,
    results: u64,
    frontier: FrontierStats,
    fingerprint: [u64; 9],
    answers: Vec<(u64, u64)>,
}

struct Row {
    dataset: Dataset,
    query: usize,
    batch: usize,
    edges_per_s: f64,
    results: u64,
    frontier: FrontierStats,
}

fn run_one(
    n: usize,
    ds: Dataset,
    raw: &sgq_datagen::RawStream,
    window: WindowSpec,
    batch: usize,
    shards: usize,
    workers: usize,
) -> Pass {
    let q = SgqQuery::new(workloads::query(n, ds), window);
    let mut engine = Engine::from_query_with(&q, opts(batch, shards, workers));
    let stream = sgq_datagen::resolve(raw, engine.labels());
    let started = Instant::now();
    let stats = engine.run_batched_count(stream.sges(), batch.max(1));
    let secs = started.elapsed().as_secs_f64();
    let span = raw.events.last().map(|e| e.3).unwrap_or(0);
    let mut answers: Vec<(u64, u64)> = engine
        .answer_at(span)
        .into_iter()
        .map(|(a, b)| (a.0, b.0))
        .collect();
    answers.sort_unstable();
    Pass {
        edges_per_s: stats.edges as f64 / secs,
        results: stats.results,
        frontier: engine.frontier_totals(),
        fingerprint: engine.exec_stats().determinism_fingerprint(),
        answers,
    }
}

fn bench_spath(c: &mut Criterion) {
    // `SGQ_BENCH_SUMMARY_ONLY=1` skips the criterion timing loops and goes
    // straight to the JSON summary passes.
    if quick() || std::env::var_os("SGQ_BENCH_SUMMARY_ONLY").is_some() {
        return;
    }
    let scale = scale();
    let window = scale.default_window();
    let mut group = c.benchmark_group("spath");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for ds in DATASETS {
        let raw = scale.stream(ds);
        for n in QUERIES {
            for batch in BATCH_SIZES {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}-q{n}", ds.name()), batch),
                    &batch,
                    |b, &batch| {
                        b.iter(|| run_one(n, ds, &raw, window, batch, 1, 1));
                    },
                );
            }
        }
    }
    group.finish();
}

/// Best-of-N timed passes per configuration, summarized as JSON, with the
/// equivalence and counter invariants asserted on every pass.
fn emit_json_summary() {
    let scale = scale();
    let window = scale.default_window();
    let mut rows: Vec<Row> = Vec::new();
    let mut stream_edges: Vec<(Dataset, usize)> = Vec::new();
    for ds in DATASETS {
        let raw = scale.stream(ds);
        stream_edges.push((ds, raw.len()));
        for n in QUERIES {
            let mut baseline: Option<Vec<(u64, u64)>> = None;
            for batch in BATCH_SIZES {
                let mut best: Option<Pass> = None;
                for _ in 0..PASSES {
                    let pass = run_one(n, ds, &raw, window, batch, 1, 1);
                    // Counter invariant: a bulk settle is one kind of
                    // improvement, so settles never exceed improvements.
                    assert!(
                        pass.frontier.nodes_settled <= pass.frontier.nodes_improved,
                        "{} Q{n} batch {batch}: settled > improved: {:?}",
                        ds.name(),
                        pass.frontier
                    );
                    // Result streams carry set semantics: bulk coalesces a
                    // node's k per-epoch improvement claims into one wider
                    // emission, so the *answer set* is the cross-dispatch
                    // contract (exact counts are pinned bulk-vs-bulk below).
                    match &baseline {
                        None => baseline = Some(pass.answers.clone()),
                        Some(answers) => {
                            assert_eq!(
                                answers,
                                &pass.answers,
                                "{} Q{n}: batch {batch} answers diverged from per-tuple",
                                ds.name()
                            );
                        }
                    }
                    if best
                        .as_ref()
                        .is_none_or(|b| pass.edges_per_s > b.edges_per_s)
                    {
                        best = Some(pass);
                    }
                }
                let best = best.expect("at least one pass");
                rows.push(Row {
                    dataset: ds,
                    query: n,
                    batch,
                    edges_per_s: best.edges_per_s,
                    results: best.results,
                    frontier: best.frontier,
                });
            }
            // Bulk determinism across parallel configurations: identical
            // result logs and executor fingerprints at (1,1) vs (4,4).
            let serial = run_one(n, ds, &raw, window, 256, 1, 1);
            let sharded = run_one(n, ds, &raw, window, 256, 4, 4);
            assert_eq!(
                serial.fingerprint,
                sharded.fingerprint,
                "{} Q{n}: bulk fingerprint diverged between (1,1) and (4,4)",
                ds.name()
            );
            assert_eq!(serial.results, sharded.results);
            assert_eq!(serial.answers, sharded.answers);
        }
    }

    // Recorded (not asserted — wall-clock ratios flake on noisy shared
    // VMs): bulk at batch ≥256 beats per-tuple on the dense closure
    // queries; the frontier counters carry the *why* (settles ≤
    // improvements collapses re-expansion chains).
    for ds in DATASETS {
        for n in QUERIES {
            let tput = |b: usize| {
                rows.iter()
                    .find(|r| r.dataset == ds && r.query == n && r.batch == b)
                    .map(|r| r.edges_per_s)
                    .unwrap()
            };
            println!(
                "{} Q{n}: bulk-256 speedup over per-tuple = {:.2}x",
                ds.name(),
                tput(256) / tput(1)
            );
        }
    }

    let body = rows
        .iter()
        .map(|r| {
            let tuple_tput = rows
                .iter()
                .find(|t| t.dataset == r.dataset && t.query == r.query && t.batch == 1)
                .map(|t| t.edges_per_s)
                .unwrap();
            format!(
                concat!(
                    "    {{\"dataset\": \"{}\", \"query\": \"Q{}\", \"mode\": \"{}\", ",
                    "\"batch_size\": {}, \"edges_per_s\": {:.0}, \"results\": {}, ",
                    "\"speedup_vs_tuple\": {:.3}, \"nodes_settled\": {}, ",
                    "\"nodes_improved\": {}, \"heap_pushes\": {}, ",
                    "\"edges_scanned\": {}, \"settle_ratio\": {:.6}}}"
                ),
                r.dataset.name(),
                r.query,
                if r.batch <= 1 { "tuple" } else { "bulk" },
                r.batch,
                r.edges_per_s,
                r.results,
                r.edges_per_s / tuple_tput,
                r.frontier.nodes_settled,
                r.frontier.nodes_improved,
                r.frontier.heap_pushes,
                r.frontier.edges_scanned,
                r.frontier.settle_ratio(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let streams = stream_edges
        .iter()
        .map(|(ds, n)| format!("\"{}\": {n}", ds.name()))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"spath\",\n  \"quick\": {},\n",
            "  \"stream_edges\": {{{}}},\n",
            "  \"window\": {{\"size\": {}, \"slide\": {}}},\n",
            "  \"rows\": [\n{}\n  ]\n}}\n"
        ),
        quick(),
        streams,
        window.size,
        window.slide,
        body
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spath.json");
    std::fs::write(path, &json).expect("write BENCH_spath.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_spath);

fn main() {
    benches();
    emit_json_summary();
}
