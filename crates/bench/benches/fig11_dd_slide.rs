//! Figure 11 (§7.3): the DD baseline across slide intervals on the
//! SO-like stream. Expected shape: throughput *increases* with β — DD
//! batches all sgts of a slide into one epoch, so larger slides amortize
//! per-epoch work (the latency/throughput trade-off of shared
//! arrangements), unlike SGA's flat curve in Figure 10b.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgq_bench::{run_query, Scale, System};
use sgq_datagen::workloads::Dataset;
use std::time::Duration;

fn bench_dd_slide_sweep(c: &mut Criterion) {
    let scale = Scale::bench().scaled(0.5);
    let raw = scale.stream(Dataset::So);
    let mut group = c.benchmark_group("fig11_dd_slide");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [2usize, 6] {
        for (name, num, den) in [
            ("3h", 1u64, 8u64),
            ("12h", 1, 2),
            ("1d", 1, 1),
            ("4d", 4, 1),
        ] {
            let window = scale.window(30, num, den);
            group.bench_with_input(
                BenchmarkId::new(format!("Q{n}"), format!("b={name}")),
                &(n, window),
                |b, &(n, window)| {
                    b.iter(|| run_query(n, Dataset::So, &raw, window, System::Dd));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dd_slide_sweep);
criterion_main!(benches);
