//! # sgq-bench — the benchmark harness for the paper's evaluation
//!
//! Shared setup for (i) the criterion benches in `benches/` (one per table
//! and figure of §7) and (ii) the `repro` binary that prints paper-style
//! tables. Workloads follow §7.1: Q1–Q7 of Table 1 over SO-like and
//! SNB-like streams, a window of `T = 30·β` with slide `β` ("|W| = 30
//! days and β = 1 day"), tail latency = p99 per-slide processing time,
//! throughput = edges/s.
//!
//! Scale is configurable: streams are generated in *ticks* (1 edge ≈ 1
//! tick) and windows derived from the span, preserving the paper's
//! window-to-stream proportions at laptop scale.

use sgq_core::engine::{Engine, EngineOptions, PathImpl};
use sgq_core::metrics::RunStats;
use sgq_core::obs::{MetricsSnapshot, ObsLevel};
use sgq_core::planner::Plan;
use sgq_datagen::{resolve, snb_stream, so_stream, workloads, RawStream, SnbConfig, SoConfig};
use sgq_dd::DdEngine;
use sgq_query::{RqProgram, SgqQuery, WindowSpec};
use workloads::Dataset;

/// Experiment scale: stream sizes and the derived window geometry.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Edges per generated stream.
    pub edges: usize,
    /// Vertices (users / persons).
    pub vertices: u64,
    /// "Days" the stream spans (the paper's SO covers ~8 years with 30-day
    /// windows; we default to 60 windowable days).
    pub days: u64,
}

impl Scale {
    /// Criterion-bench scale: a couple of seconds per configuration.
    pub fn bench() -> Scale {
        Scale {
            edges: 3_000,
            vertices: 600,
            days: 60,
        }
    }

    /// `repro` binary default scale.
    pub fn repro() -> Scale {
        Scale {
            edges: 20_000,
            vertices: 2_500,
            days: 60,
        }
    }

    /// Scales edge count by `f` (for quick CLI adjustment).
    pub fn scaled(self, f: f64) -> Scale {
        Scale {
            edges: ((self.edges as f64 * f) as usize).max(100),
            vertices: ((self.vertices as f64 * f.sqrt()) as u64).max(10),
            ..self
        }
    }

    /// Stream span in ticks.
    pub fn span(&self) -> u64 {
        self.edges as u64
    }

    /// Ticks per simulated "day".
    pub fn ticks_per_day(&self) -> u64 {
        (self.span() / self.days).max(1)
    }

    /// The paper's default window: 30 days, sliding by 1 day.
    pub fn default_window(&self) -> WindowSpec {
        WindowSpec::new(30 * self.ticks_per_day(), self.ticks_per_day())
    }

    /// A window of `days` days with slide `slide_days` days.
    pub fn window(&self, days: u64, slide_days_num: u64, slide_days_den: u64) -> WindowSpec {
        let day = self.ticks_per_day();
        WindowSpec::new(days * day, ((day * slide_days_num) / slide_days_den).max(1))
    }

    /// Generates the raw stream for a dataset at this scale.
    pub fn stream(&self, ds: Dataset) -> RawStream {
        match ds {
            Dataset::So => {
                so_stream(&SoConfig::new(self.vertices, self.edges).with_span(self.span()))
            }
            Dataset::Snb => {
                snb_stream(&SnbConfig::new(self.vertices, self.edges).with_span(self.span()))
            }
        }
    }
}

/// Window sizes (in simulated "days") of the hosted variants of each
/// query in the multi-plan "fleet" benches (`parallel`, `sharding`); all
/// slide by one day, so the host ticks daily like the paper's default
/// window. One definition keeps the two benches' fleets identical — the
/// sharding rows are only comparable to the parallel rows because they
/// host the same plans.
pub const VARIANT_DAYS: [u64; 4] = [18, 22, 26, 30];

/// The window-variant fleet of query `n`: one registration per entry of
/// [`VARIANT_DAYS`]. Distinct window sizes make the plans structurally
/// distinct, so a shared dataflow holds that many disjoint operator
/// chains — the schedule width the parallel executors sweep.
pub fn window_variant_fleet(n: usize, ds: Dataset, scale: &Scale) -> Vec<SgqQuery> {
    VARIANT_DAYS
        .iter()
        .map(|&days| SgqQuery::new(workloads::query(n, ds), scale.window(days, 1, 1)))
        .collect()
}

/// Which engine/plan to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The SGA engine with S-PATH (the paper's "SGA" rows).
    Sga,
    /// The SGA engine with the negative-tuple PATH of \[57\] (Table 3 rows).
    SgaNegPath,
    /// The DD-style incremental baseline (the paper's "DD" rows).
    Dd,
}

impl System {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            System::Sga => "SGA",
            System::SgaNegPath => "S-PATH[neg]",
            System::Dd => "DD",
        }
    }
}

/// Runs query `Qn` on `ds` at `scale` under `window`, returning run stats.
pub fn run_query(
    n: usize,
    ds: Dataset,
    raw: &RawStream,
    window: WindowSpec,
    system: System,
) -> RunStats {
    let program = workloads::query(n, ds);
    run_program(&program, raw, window, system)
}

/// Runs an arbitrary program over a raw stream.
pub fn run_program(
    program: &RqProgram,
    raw: &RawStream,
    window: WindowSpec,
    system: System,
) -> RunStats {
    let stream = resolve(raw, program.labels());
    match system {
        System::Sga | System::SgaNegPath => {
            // Like the paper's prototype, paths are *recoverable* from the
            // Δ-PATH index (parent pointers); the measured result stream
            // carries pairs, so per-emission materialisation is off here
            // (the ablation bench measures its cost separately).
            let opts = EngineOptions {
                path_impl: if system == System::Sga {
                    PathImpl::Direct
                } else {
                    PathImpl::NegativeTuple
                },
                materialize_paths: false,
                ..Default::default()
            };
            let query = SgqQuery::new(program.clone(), window);
            let mut engine = Engine::from_query_with(&query, opts);
            engine.run(&stream)
        }
        System::Dd => {
            let query = SgqQuery::new(program.clone(), window);
            let mut dd = DdEngine::new(&query);
            dd.run(&stream)
        }
    }
}

/// Runs query `Qn` on the SGA engine at an explicit observability level,
/// returning run stats plus the post-run metrics snapshot. Unlike
/// [`run_query`], the level is pinned rather than read from `SGQ_OBS`,
/// so benches comparing levels are environment-independent.
pub fn run_query_obs(
    n: usize,
    ds: Dataset,
    raw: &RawStream,
    window: WindowSpec,
    obs: ObsLevel,
) -> (RunStats, MetricsSnapshot) {
    let program = workloads::query(n, ds);
    let stream = resolve(raw, program.labels());
    let opts = EngineOptions {
        materialize_paths: false,
        obs,
        ..Default::default()
    };
    let query = SgqQuery::new(program, window);
    let mut engine = Engine::from_query_with(&query, opts);
    let stats = engine.run(&stream);
    let snapshot = engine.metrics_snapshot();
    (stats, snapshot)
}

/// The extended latency/state JSON fields shared by bench rows and
/// `repro --stats`: p50/p99/p99.9 slide latency (seconds) and the peak
/// retained state entries. Returned as a fragment (no braces) so callers
/// splice it into their own row objects.
pub fn latency_fields(stats: &RunStats) -> String {
    let profile = stats.latency_profile();
    format!(
        concat!(
            "\"p50_s\": {:.6}, \"p99_s\": {:.6}, ",
            "\"p999_s\": {:.6}, \"peak_state\": {}"
        ),
        profile.percentile(0.50).as_secs_f64(),
        profile.percentile(0.99).as_secs_f64(),
        profile.percentile(0.999).as_secs_f64(),
        stats.peak_state
    )
}

/// Runs an explicit (rewritten) plan over a raw stream.
pub fn run_plan(plan: &Plan, raw: &RawStream) -> RunStats {
    let stream = resolve(raw, &plan.labels);
    let mut engine = Engine::from_plan(plan);
    engine.run(&stream)
}

/// Formats a stats row like the paper's tables: throughput (edges/s) and
/// p99 tail latency (seconds).
pub fn row(stats: &RunStats) -> String {
    format!(
        "{:>9.0} ev/s  {:>9.4} s",
        stats.throughput(),
        stats.tail_latency().as_secs_f64()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_runs_every_cell_of_table2() {
        let scale = Scale {
            edges: 400,
            vertices: 50,
            days: 20,
        };
        for ds in [Dataset::So, Dataset::Snb] {
            let raw = scale.stream(ds);
            for n in 1..=7 {
                for sys in [System::Sga, System::Dd, System::SgaNegPath] {
                    let stats = run_query(n, ds, &raw, scale.default_window(), sys);
                    assert_eq!(stats.edges as usize + stats_skipped(&raw, n, ds), raw.len());
                    assert!(stats.throughput() > 0.0, "{ds:?} Q{n} {sys:?}");
                }
            }
        }
    }

    /// Edges whose label a query does not reference are discarded before
    /// the engine (§7.2.1), so `stats.edges` counts only resolved ones.
    fn stats_skipped(raw: &RawStream, n: usize, ds: Dataset) -> usize {
        let program = workloads::query(n, ds);
        raw.len() - resolve(raw, program.labels()).len()
    }

    #[test]
    fn scaled_changes_sizes() {
        let s = Scale::bench().scaled(2.0);
        assert!(s.edges > Scale::bench().edges);
        let w = s.default_window();
        assert_eq!(w.size, 30 * w.slide);
    }
}
