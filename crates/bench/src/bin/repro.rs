//! `repro` — regenerates every table and figure of the paper's evaluation
//! (§7) at laptop scale and prints them in the paper's format.
//!
//! ```text
//! cargo run -p sgq-bench --release --bin repro              # everything
//! cargo run -p sgq-bench --release --bin repro table2       # one experiment
//! cargo run -p sgq-bench --release --bin repro all 0.5      # half scale
//! cargo run -p sgq-bench --release --bin repro --stats table2
//! ```
//!
//! Experiments: `table2`, `fig10a`, `fig10b`, `fig11`, `fig12`, `fig13`,
//! `fig14`, `table3`, `all`. With `--stats`, an extra section re-runs
//! Q1–Q7 under `ObsLevel::Timing`, prints the extended per-query stats
//! (p50/p99/p99.9 slide latency, peak state) with an explain-analyze of
//! Q4's lowered plan, and writes the per-operator metrics snapshots to
//! `METRICS_repro.jsonl`.

use sgq_bench::{latency_fields, row, run_plan, run_query, run_query_obs, Scale, System};
use sgq_core::engine::{Engine, EngineOptions};
use sgq_core::obs::ObsLevel;
use sgq_core::planner::plan_canonical;
use sgq_core::rewrite;
use sgq_datagen::{resolve, workloads, workloads::Dataset};
use sgq_query::SgqQuery;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stats = args.iter().any(|a| a == "--stats");
    args.retain(|a| a != "--stats");
    let what = args.first().map(String::as_str).unwrap_or("all");
    let factor: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let scale = Scale::repro().scaled(factor);
    println!(
        "# s-graffito repro — {} edges/stream, {} vertices, 1 day = {} ticks\n",
        scale.edges,
        scale.vertices,
        scale.ticks_per_day()
    );

    match what {
        "table2" => table2(scale),
        "fig10a" => fig10a(scale),
        "fig10b" => fig10b(scale),
        "fig11" => fig11(scale),
        "fig12" => plan_figure(scale, 4, "Figure 12 — Q4 plan space"),
        "fig13" => plan_figure(scale, 2, "Figure 13 — Q2 plan space"),
        "fig14" => plan_figure(scale, 3, "Figure 14 — Q3 plan space"),
        "table3" => table3(scale),
        "all" => {
            table2(scale);
            fig10a(scale);
            fig10b(scale);
            fig11(scale);
            plan_figure(scale, 4, "Figure 12 — Q4 plan space");
            plan_figure(scale, 2, "Figure 13 — Q2 plan space");
            plan_figure(scale, 3, "Figure 14 — Q3 plan space");
            table3(scale);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            std::process::exit(1);
        }
    }
    if stats {
        stats_report(scale);
    }
}

/// `--stats`: Q1–Q7 on both datasets under `ObsLevel::Timing` — the
/// extended latency/state row per query, an explain-analyze of Q4's
/// lowered plan with its live counters, and every run's per-operator
/// metrics snapshot written as JSONL.
fn stats_report(scale: Scale) {
    println!("## Per-query stats (ObsLevel::Timing, |W|=30d, β=1d)\n");
    let window = scale.default_window();
    let mut jsonl = String::new();
    for ds in [Dataset::So, Dataset::Snb] {
        let raw = scale.stream(ds);
        println!("{}:", ds.name());
        for n in 1..=7 {
            let (stats, snap) = run_query_obs(n, ds, &raw, window, ObsLevel::Timing);
            let profile = stats.latency_profile();
            println!(
                "Q{n:<5} p50/p99/p99.9 = {:.4}/{:.4}/{:.4} s   peak_state = {:<8} state_now = {}",
                profile.percentile(0.50).as_secs_f64(),
                profile.percentile(0.99).as_secs_f64(),
                profile.percentile(0.999).as_secs_f64(),
                stats.peak_state,
                snap.state_entries,
            );
            jsonl.push_str(&format!(
                "{{\"record\":\"run\",\"dataset\":\"{}\",\"query\":\"Q{n}\", {}}}\n",
                ds.name(),
                latency_fields(&stats)
            ));
            jsonl.push_str(&snap.to_jsonl());
        }
        println!();
    }
    // One lowered tree with live counters, for the showcase query of the
    // plan-space figures.
    let raw = scale.stream(Dataset::So);
    let program = workloads::query(4, Dataset::So);
    let stream = resolve(&raw, program.labels());
    let query = SgqQuery::new(program, window);
    let mut engine = Engine::from_query_with(
        &query,
        EngineOptions {
            materialize_paths: false,
            obs: ObsLevel::Timing,
            ..Default::default()
        },
    );
    engine.run(&stream);
    println!("SO Q4 explain-analyze:\n{}", engine.explain_analyze());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_repro.jsonl");
    std::fs::write(path, &jsonl).expect("write METRICS_repro.jsonl");
    println!("wrote {path}");
}

/// Table 2: SGA vs DD throughput/tail-latency, Q1–Q7, SO & SNB,
/// |W| = 30 days, β = 1 day.
fn table2(scale: Scale) {
    println!("## Table 2 — SGA vs DD (|W|=30d, β=1d)\n");
    let window = scale.default_window();
    for ds in [Dataset::So, Dataset::Snb] {
        let raw = scale.stream(ds);
        println!("{}:", ds.name());
        println!(
            "{:<6} {:<32} {:<32}",
            "", "SGA (Tput / p99 TL)", "DD (Tput / p99 TL)"
        );
        for n in 1..=7 {
            let sga = run_query(n, ds, &raw, window, System::Sga);
            let dd = run_query(n, ds, &raw, window, System::Dd);
            println!("Q{n:<5} {:<32} {:<32}", row(&sga), row(&dd));
        }
        println!();
    }
}

/// Figure 10a: SGA across window sizes 10–50 days (β = 1 day) on SO.
fn fig10a(scale: Scale) {
    println!("## Figure 10a — SGA vs window size (SO, β=1d)\n");
    let raw = scale.stream(Dataset::So);
    print!("{:<6}", "");
    for days in [10u64, 20, 30, 40, 50] {
        print!(" {:>14}", format!("T={days}d"));
    }
    println!("   (throughput ev/s | p99 latency s)");
    for n in 1..=7 {
        print!("Q{n:<5}");
        for days in [10u64, 20, 30, 40, 50] {
            let w = scale.window(days, 1, 1);
            let stats = run_query(n, Dataset::So, &raw, w, System::Sga);
            print!(
                " {:>7.0}|{:<6.3}",
                stats.throughput(),
                stats.tail_latency().as_secs_f64()
            );
        }
        println!();
    }
    println!();
}

/// Figure 10b: SGA across slide intervals 3h–4d (T = 30 days) on SO.
fn fig10b(scale: Scale) {
    println!("## Figure 10b — SGA vs slide interval (SO, T=30d)\n");
    slide_sweep(scale, System::Sga);
}

/// Figure 11: the DD baseline across slide intervals — throughput grows
/// with batching, unlike SGA's flat curve.
fn fig11(scale: Scale) {
    println!("## Figure 11 — DD vs slide interval (SO, T=30d)\n");
    slide_sweep(scale, System::Dd);
}

fn slide_sweep(scale: Scale, system: System) {
    let raw = scale.stream(Dataset::So);
    let slides: [(&str, u64, u64); 6] = [
        ("3h", 1, 8),
        ("6h", 1, 4),
        ("12h", 1, 2),
        ("1d", 1, 1),
        ("2d", 2, 1),
        ("4d", 4, 1),
    ];
    print!("{:<6}", "");
    for (name, _, _) in slides {
        print!(" {:>14}", format!("β={name}"));
    }
    println!("   ({})", system.name());
    for n in 1..=7 {
        print!("Q{n:<5}");
        for (_, num, den) in slides {
            let w = scale.window(30, num, den);
            let stats = run_query(n, Dataset::So, &raw, w, system);
            print!(
                " {:>7.0}|{:<6.3}",
                stats.throughput(),
                stats.tail_latency().as_secs_f64()
            );
        }
        println!();
    }
    println!();
}

/// Figures 12/13/14: the plan space of Q4/Q2/Q3 via the §5.4 rules, on
/// both datasets. Plan 0 is the canonical SGA plan; the rest are rewrites
/// (for Q4 these are the paper's P1/P2/P3).
fn plan_figure(scale: Scale, qn: usize, title: &str) {
    println!("## {title}\n");
    for ds in [Dataset::So, Dataset::Snb] {
        let raw = scale.stream(ds);
        let program = workloads::query(qn, ds);
        let query = SgqQuery::new(program, scale.default_window());
        let canonical = plan_canonical(&query);
        let plans = rewrite::enumerate_plans(&canonical, 6);
        println!("{} (Q{qn}):", ds.name());
        for (i, plan) in plans.iter().enumerate() {
            let stats = run_plan(plan, &raw);
            let tag = if i == 0 {
                "SGA".to_string()
            } else {
                format!("P{i}")
            };
            println!(
                "  {tag:<5} {:<32} ({} ops, {} stateful)",
                row(&stats),
                plan.expr.size(),
                plan.expr.stateful_ops()
            );
        }
        println!();
    }
}

/// Table 3: S-PATH (direct) vs the negative-tuple PATH of \[57\].
fn table3(scale: Scale) {
    println!("## Table 3 — S-PATH (direct) vs negative-tuple PATH (|W|=30d, β=1d)\n");
    let window = scale.default_window();
    for ds in [Dataset::So, Dataset::Snb] {
        let raw = scale.stream(ds);
        println!("{}:", ds.name());
        println!(
            "{:<6} {:<32} {:<32} {:<20}",
            "", "S-PATH (Tput / p99 TL)", "neg-tuple (Tput / p99 TL)", "Tput improvement"
        );
        for n in 1..=7 {
            let direct = run_query(n, ds, &raw, window, System::Sga);
            let neg = run_query(n, ds, &raw, window, System::SgaNegPath);
            let imp = if neg.throughput() > 0.0 {
                (direct.throughput() / neg.throughput() - 1.0) * 100.0
            } else {
                0.0
            };
            println!(
                "Q{n:<5} {:<32} {:<32} {:>+8.1}%",
                row(&direct),
                row(&neg),
                imp
            );
        }
        println!();
    }
}
