//! Spawns the real `sgq-serve` binary (not an in-process server) on a
//! loopback port, drives it over the wire, and checks the graceful
//! shutdown path end to end: final metrics snapshot on disk, lifecycle
//! trace, clean exit status.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use sgq_serve::client::Client;

struct HostProcess {
    child: Child,
    addr: String,
    /// Keeps the stdout pipe open so the binary's final status line
    /// doesn't hit a broken pipe.
    stdout: BufReader<std::process::ChildStdout>,
}

impl HostProcess {
    /// Starts the binary with the given extra flags and parses the
    /// `listening on ADDR` line to discover the bound port.
    fn start(extra: &[&str]) -> HostProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sgq-serve"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn sgq-serve");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut stdout = BufReader::new(stdout);
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("banner line");
        let addr = banner
            .trim_end()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        HostProcess {
            child,
            addr,
            stdout,
        }
    }
}

impl Drop for HostProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn binary_serves_and_shuts_down_cleanly() {
    let dir = std::env::temp_dir().join(format!("sgq_bin_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.jsonl");
    let trace = dir.join("trace.jsonl");

    let mut host = HostProcess::start(&[
        "--metrics",
        metrics.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);

    let mut c = Client::connect(host.addr.as_str()).expect("connect to binary");
    let server_name = c.hello("bin-smoke").unwrap();
    assert_eq!(server_name, "sgq-serve");

    let q = c.register("Ans(x, y) <- knows+(x, y).", 100, 10).unwrap();
    c.insert(1, 2, "knows", 1).unwrap();
    c.insert(2, 3, "knows", 2).unwrap();
    c.barrier().unwrap();
    let rows = c.take_results();
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|r| r.query == q));

    // The wire metrics snapshot has the JSONL shape.
    let live_snapshot = c.metrics().unwrap();
    assert!(live_snapshot
        .lines()
        .any(|l| l.contains("\"record\":\"exec\"")));

    // Graceful shutdown over the wire: BYE, clean exit, artifacts.
    let reason = c.shutdown().unwrap();
    assert_eq!(reason, "shutdown");
    let status = host.child.wait().expect("wait for exit");
    assert!(status.success(), "binary exit: {status:?}");
    let mut last = String::new();
    host.stdout.read_line(&mut last).unwrap();
    assert_eq!(last.trim_end(), "sgq-serve: shut down cleanly");

    let on_disk = std::fs::read_to_string(&metrics).unwrap();
    assert!(on_disk.lines().any(|l| l.contains("\"record\":\"exec\"")));
    let trace_doc = std::fs::read_to_string(&trace).unwrap();
    assert!(!trace_doc.trim().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_rejects_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_sgq-serve"))
        .arg("--bogus")
        .output()
        .expect("run sgq-serve");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}
