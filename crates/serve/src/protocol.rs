//! The `sgq-serve` wire protocol: length-prefixed frames carrying typed
//! messages, fully specified in `docs/PROTOCOL.md` (byte-exact — a
//! non-rust client can be written from the document alone).
//!
//! One **frame** is
//!
//! ```text
//! +----------------+---------+------+----------------+
//! | len: u32 BE    | version | type | body (len - 2) |
//! +----------------+---------+------+----------------+
//! ```
//!
//! where `len` counts the payload (version byte + type byte + body), all
//! multi-byte integers are big-endian, and strings are encoded as a
//! `u16` byte length followed by that many UTF-8 bytes. The current
//! [`PROTOCOL_VERSION`] is 1; a server receiving any other version byte
//! answers [`ERR_BAD_VERSION`] and closes the connection.

use std::io::{self, Read, Write};

/// The protocol version this implementation speaks (the frame's third
/// byte on the wire). Bumped on any incompatible layout change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame's payload length. A declared length above this
/// is treated as a malformed stream ([`ERR_OVERSIZED`]): the server never
/// allocates attacker-controlled sizes, and a desynchronized client fails
/// fast instead of stalling on a bogus multi-gigabyte read.
pub const MAX_FRAME_LEN: u32 = 1 << 24; // 16 MiB

// Error codes (the `code` field of [`Message::Error`]).
/// A frame or body that could not be decoded (truncated body, bad UTF-8).
pub const ERR_MALFORMED: u16 = 1;
/// An unknown message-type byte (recoverable: the connection stays open).
pub const ERR_UNKNOWN_TYPE: u16 = 2;
/// A version byte other than [`PROTOCOL_VERSION`] (fatal).
pub const ERR_BAD_VERSION: u16 = 3;
/// A `REGISTER` whose query text failed to parse or validate.
pub const ERR_BAD_QUERY: u16 = 4;
/// A `DEREGISTER` naming a query id the host does not know.
pub const ERR_UNKNOWN_QUERY: u16 = 5;
/// An edge whose timestamp precedes the host's watermark (dropped).
pub const ERR_OUT_OF_ORDER: u16 = 6;
/// A declared frame length above [`MAX_FRAME_LEN`] (fatal).
pub const ERR_OVERSIZED: u16 = 7;
/// A subscriber on the `Disconnect` backpressure policy fell behind.
pub const ERR_SLOW_CONSUMER: u16 = 8;
/// The host is shutting down and no longer accepts the request.
pub const ERR_SHUTTING_DOWN: u16 = 9;
/// The request is not supported in the host's current mode (e.g. a
/// `DELETE` on a duplicate-suppressing host).
pub const ERR_NOT_SUPPORTED: u16 = 10;

/// Per-subscription slow-consumer policy (the `policy` byte of
/// [`Message::Register`]): what happens when the subscriber's bounded
/// result buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Drop the new result frame and count it; the running count is
    /// reported via [`Message::Dropped`] at the next barrier.
    #[default]
    DropNewest,
    /// Terminate the subscriber's connection ([`ERR_SLOW_CONSUMER`] +
    /// [`Message::Bye`]); its queries are deregistered.
    Disconnect,
}

impl Backpressure {
    /// The wire encoding (0 = drop-newest, 1 = disconnect).
    pub fn to_byte(self) -> u8 {
        match self {
            Backpressure::DropNewest => 0,
            Backpressure::Disconnect => 1,
        }
    }

    /// Decodes the policy byte.
    pub fn from_byte(b: u8) -> Option<Backpressure> {
        match b {
            0 => Some(Backpressure::DropNewest),
            1 => Some(Backpressure::Disconnect),
            _ => None,
        }
    }
}

/// One edge entry of a [`Message::Batch`] (and the body shared by
/// `INSERT` / `DELETE`): an explicit-timestamp edge with its label name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEdge {
    /// `true` for an explicit deletion, `false` for an insertion.
    pub delete: bool,
    /// Source vertex id.
    pub src: u64,
    /// Target vertex id.
    pub trg: u64,
    /// Event timestamp (ticks; must be non-decreasing per connection
    /// stream and across the host's merged input).
    pub t: u64,
    /// Edge label name, resolved against the host's label namespace.
    pub label: String,
}

/// A decoded protocol message. Types `0x01`–`0x7F` flow client → server,
/// `0x81`–`0xFF` server → client; see `docs/PROTOCOL.md` for the
/// byte-exact body layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    // ---- client → server -------------------------------------------
    /// `0x01` — opens the session; the server answers [`Message::Welcome`].
    Hello {
        /// Free-form client identification (logged, never interpreted).
        client: String,
    },
    /// `0x02` — registers a persistent query; the server answers
    /// [`Message::Registered`] (or [`Message::Error`] with
    /// [`ERR_BAD_QUERY`]). The connection becomes the query's subscriber:
    /// its results stream back as [`Message::Result`] frames.
    Register {
        /// Slow-consumer policy for this subscription.
        policy: Backpressure,
        /// Max queued result frames for this subscription (0 = server
        /// default).
        buffer: u32,
        /// Window size `T` in ticks.
        window: u64,
        /// Slide interval `β` in ticks.
        slide: u64,
        /// Datalog-style RQ program text (`sgq_query::parse_program`).
        query: String,
    },
    /// `0x03` — deregisters a query previously registered on this
    /// connection; answered by [`Message::Deregistered`].
    Deregister {
        /// The query id from [`Message::Registered`].
        query: u64,
    },
    /// `0x04` — ingests one edge insertion.
    Insert(
        /// The edge (its `delete` flag is ignored on this type).
        WireEdge,
    ),
    /// `0x05` — ingests one explicit edge deletion (§6.2.5; requires a
    /// host started with explicit deletions enabled).
    Delete(
        /// The edge to retract.
        WireEdge,
    ),
    /// `0x06` — ingests a timestamp-ordered batch of edges in one frame.
    Batch {
        /// The edges, in non-decreasing timestamp order.
        edges: Vec<WireEdge>,
    },
    /// `0x07` — advances event time without ingesting (windows slide,
    /// expired state purges).
    Advance {
        /// The new watermark (must be ≥ the host's current time).
        t: u64,
    },
    /// `0x08` — forces the host to close the open epoch now instead of
    /// waiting for the batch-size or wall-clock trigger.
    Flush,
    /// `0x09` — requests one metrics snapshot
    /// ([`Message::MetricsSnapshot`] reply).
    Metrics,
    /// `0x0A` — asks the host to shut down gracefully: drain, final
    /// metrics snapshot, [`Message::Bye`] to every connection.
    Shutdown,
    /// `0x0B` — barrier: the server processes everything received before
    /// this frame (flushing the open epoch and routing all pending
    /// results) and then answers [`Message::Pong`] with the same token.
    Ping {
        /// Opaque token echoed back in the pong.
        token: u64,
    },

    // ---- server → client -------------------------------------------
    /// `0x81` — answers [`Message::Hello`].
    Welcome {
        /// Free-form server identification.
        server: String,
    },
    /// `0x82` — the query registered; results will carry this id.
    Registered {
        /// Host-assigned query id.
        query: u64,
    },
    /// `0x83` — answers [`Message::Deregister`].
    Deregistered {
        /// The query id.
        query: u64,
        /// `false` if the id was unknown (also reported as an error).
        ok: bool,
    },
    /// `0x84` — one result tuple of a subscribed query.
    Result {
        /// The producing query's id.
        query: u64,
        /// `true` for a retraction (negative tuple), `false` for a result.
        delete: bool,
        /// Result source vertex.
        src: u64,
        /// Result target vertex.
        trg: u64,
        /// Validity interval start (inclusive).
        ts: u64,
        /// Validity interval end (exclusive).
        exp: u64,
    },
    /// `0x85` — result frames dropped for this subscription since the
    /// last report (drop-newest backpressure only).
    Dropped {
        /// The lossy subscription's query id.
        query: u64,
        /// Frames dropped since the previous `Dropped` report.
        count: u64,
    },
    /// `0x86` — one metrics snapshot as a JSONL document (the
    /// `MetricsSnapshot::to_jsonl` shape).
    MetricsSnapshot {
        /// The JSONL text: one `"record":"exec"|"operator"|"query"`
        /// object per line.
        jsonl: String,
    },
    /// `0x87` — answers [`Message::Ping`] after the barrier completes.
    Pong {
        /// The ping's token.
        token: u64,
    },
    /// `0x88` — a request failed; `code` is one of the `ERR_*` constants.
    Error {
        /// Machine-readable error code.
        code: u16,
        /// Human-readable context.
        message: String,
    },
    /// `0x89` — the server is closing this connection.
    Bye {
        /// Why (shutdown, slow consumer, fatal protocol error).
        reason: String,
    },
}

/// A decode failure: the matching `ERR_*` code, a message, and whether
/// the connection can survive (an unknown type can; a framing-level
/// desync cannot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// The `ERR_*` code to report.
    pub code: u16,
    /// Human-readable context.
    pub message: String,
    /// `false` when the byte stream can no longer be trusted and the
    /// connection must close.
    pub recoverable: bool,
}

impl ProtoError {
    fn fatal(code: u16, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
            recoverable: false,
        }
    }

    fn soft(code: u16, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
            recoverable: true,
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error {}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&s.as_bytes()[..len as usize]);
}

fn put_edge(buf: &mut Vec<u8>, e: &WireEdge) {
    buf.push(e.delete as u8);
    buf.extend_from_slice(&e.src.to_be_bytes());
    buf.extend_from_slice(&e.trg.to_be_bytes());
    buf.extend_from_slice(&e.t.to_be_bytes());
    put_str(buf, &e.label);
}

impl Message {
    /// The message's type byte on the wire.
    pub fn type_byte(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0x01,
            Message::Register { .. } => 0x02,
            Message::Deregister { .. } => 0x03,
            Message::Insert(_) => 0x04,
            Message::Delete(_) => 0x05,
            Message::Batch { .. } => 0x06,
            Message::Advance { .. } => 0x07,
            Message::Flush => 0x08,
            Message::Metrics => 0x09,
            Message::Shutdown => 0x0A,
            Message::Ping { .. } => 0x0B,
            Message::Welcome { .. } => 0x81,
            Message::Registered { .. } => 0x82,
            Message::Deregistered { .. } => 0x83,
            Message::Result { .. } => 0x84,
            Message::Dropped { .. } => 0x85,
            Message::MetricsSnapshot { .. } => 0x86,
            Message::Pong { .. } => 0x87,
            Message::Error { .. } => 0x88,
            Message::Bye { .. } => 0x89,
        }
    }

    /// Encodes the message as one complete frame (length prefix
    /// included), ready to write to a socket.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = vec![PROTOCOL_VERSION, self.type_byte()];
        match self {
            Message::Hello { client } => put_str(&mut body, client),
            Message::Register {
                policy,
                buffer,
                window,
                slide,
                query,
            } => {
                body.push(policy.to_byte());
                body.extend_from_slice(&buffer.to_be_bytes());
                body.extend_from_slice(&window.to_be_bytes());
                body.extend_from_slice(&slide.to_be_bytes());
                put_str(&mut body, query);
            }
            Message::Deregister { query } => body.extend_from_slice(&query.to_be_bytes()),
            Message::Insert(e) | Message::Delete(e) => put_edge(&mut body, e),
            Message::Batch { edges } => {
                body.extend_from_slice(&(edges.len() as u32).to_be_bytes());
                for e in edges {
                    put_edge(&mut body, e);
                }
            }
            Message::Advance { t } => body.extend_from_slice(&t.to_be_bytes()),
            Message::Flush | Message::Metrics | Message::Shutdown => {}
            Message::Ping { token } | Message::Pong { token } => {
                body.extend_from_slice(&token.to_be_bytes())
            }
            Message::Welcome { server } => put_str(&mut body, server),
            Message::Registered { query } => body.extend_from_slice(&query.to_be_bytes()),
            Message::Deregistered { query, ok } => {
                body.extend_from_slice(&query.to_be_bytes());
                body.push(*ok as u8);
            }
            Message::Result {
                query,
                delete,
                src,
                trg,
                ts,
                exp,
            } => {
                body.extend_from_slice(&query.to_be_bytes());
                body.push(*delete as u8);
                body.extend_from_slice(&src.to_be_bytes());
                body.extend_from_slice(&trg.to_be_bytes());
                body.extend_from_slice(&ts.to_be_bytes());
                body.extend_from_slice(&exp.to_be_bytes());
            }
            Message::Dropped { query, count } => {
                body.extend_from_slice(&query.to_be_bytes());
                body.extend_from_slice(&count.to_be_bytes());
            }
            Message::MetricsSnapshot { jsonl } => {
                // Documents exceed the u16 string limit: u32 length.
                body.extend_from_slice(&(jsonl.len() as u32).to_be_bytes());
                body.extend_from_slice(jsonl.as_bytes());
            }
            Message::Error { code, message } => {
                body.extend_from_slice(&code.to_be_bytes());
                put_str(&mut body, message);
            }
            Message::Bye { reason } => put_str(&mut body, reason),
        }
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&body);
        frame
    }

    /// Decodes a frame payload (the bytes after the length prefix:
    /// version byte, type byte, body).
    pub fn decode(payload: &[u8]) -> Result<Message, ProtoError> {
        let mut cur = Cursor::new(payload);
        let version = cur.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(ProtoError::fatal(
                ERR_BAD_VERSION,
                format!("version {version}, expected {PROTOCOL_VERSION}"),
            ));
        }
        let ty = cur.u8()?;
        let msg = match ty {
            0x01 => Message::Hello { client: cur.str()? },
            0x02 => Message::Register {
                policy: Backpressure::from_byte(cur.u8()?).ok_or_else(|| {
                    ProtoError::soft(ERR_MALFORMED, "unknown backpressure policy byte")
                })?,
                buffer: cur.u32()?,
                window: cur.u64()?,
                slide: cur.u64()?,
                query: cur.str()?,
            },
            0x03 => Message::Deregister { query: cur.u64()? },
            0x04 => Message::Insert(cur.edge()?),
            0x05 => Message::Delete(cur.edge()?),
            0x06 => {
                let n = cur.u32()? as usize;
                // Bound allocation by what the payload could possibly
                // hold (an edge is ≥ 27 bytes on the wire).
                if n > payload.len() / 27 + 1 {
                    return Err(ProtoError::fatal(
                        ERR_MALFORMED,
                        format!("batch count {n} exceeds frame capacity"),
                    ));
                }
                let mut edges = Vec::with_capacity(n);
                for _ in 0..n {
                    edges.push(cur.edge()?);
                }
                Message::Batch { edges }
            }
            0x07 => Message::Advance { t: cur.u64()? },
            0x08 => Message::Flush,
            0x09 => Message::Metrics,
            0x0A => Message::Shutdown,
            0x0B => Message::Ping { token: cur.u64()? },
            0x81 => Message::Welcome { server: cur.str()? },
            0x82 => Message::Registered { query: cur.u64()? },
            0x83 => Message::Deregistered {
                query: cur.u64()?,
                ok: cur.u8()? != 0,
            },
            0x84 => Message::Result {
                query: cur.u64()?,
                delete: cur.u8()? != 0,
                src: cur.u64()?,
                trg: cur.u64()?,
                ts: cur.u64()?,
                exp: cur.u64()?,
            },
            0x85 => Message::Dropped {
                query: cur.u64()?,
                count: cur.u64()?,
            },
            0x86 => {
                let len = cur.u32()? as usize;
                let bytes = cur.take(len)?;
                Message::MetricsSnapshot {
                    jsonl: String::from_utf8(bytes.to_vec()).map_err(|_| {
                        ProtoError::soft(ERR_MALFORMED, "metrics document is not UTF-8")
                    })?,
                }
            }
            0x87 => Message::Pong { token: cur.u64()? },
            0x88 => Message::Error {
                code: cur.u16()?,
                message: cur.str()?,
            },
            0x89 => Message::Bye { reason: cur.str()? },
            other => {
                return Err(ProtoError::soft(
                    ERR_UNKNOWN_TYPE,
                    format!("unknown message type 0x{other:02x}"),
                ))
            }
        };
        cur.finish()?;
        Ok(msg)
    }
}

/// Bounds-checked big-endian reader over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.at + n > self.buf.len() {
            return Err(ProtoError::soft(
                ERR_MALFORMED,
                format!(
                    "truncated body: wanted {n} bytes at offset {}, frame has {}",
                    self.at,
                    self.buf.len()
                ),
            ));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::soft(ERR_MALFORMED, "string is not UTF-8"))
    }

    fn edge(&mut self) -> Result<WireEdge, ProtoError> {
        Ok(WireEdge {
            delete: self.u8()? != 0,
            src: self.u64()?,
            trg: self.u64()?,
            t: self.u64()?,
            label: self.str()?,
        })
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.at != self.buf.len() {
            return Err(ProtoError::soft(
                ERR_MALFORMED,
                format!(
                    "{} trailing bytes after message body",
                    self.buf.len() - self.at
                ),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one message as a frame. The caller flushes (batching several
/// frames per `flush` is the intended fast path).
pub fn write_message(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    w.write_all(&msg.encode())
}

/// Reads one frame payload. Returns `Ok(None)` on a clean EOF at a frame
/// boundary; EOF inside a frame (a truncated write) is an
/// `UnexpectedEof` error, and a declared length above [`MAX_FRAME_LEN`]
/// (or below the 2-byte minimum) is `InvalidData` — both mean the byte
/// stream can no longer be trusted.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    // Distinguish clean EOF (no bytes) from a truncated length prefix.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len);
    if !(2..=MAX_FRAME_LEN).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside [2, {MAX_FRAME_LEN}]"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads and decodes one message. `Ok(None)` on clean EOF;
/// framing-level failures surface as `io::Error`, message-level ones as
/// a [`ProtoError`] inside the `Ok` (so callers can keep the connection
/// for recoverable ones).
pub fn read_message(r: &mut impl Read) -> io::Result<Option<Result<Message, ProtoError>>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => Ok(Some(Message::decode(&payload))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let frame = msg.encode();
        let (len, payload) = frame.split_at(4);
        assert_eq!(
            u32::from_be_bytes(len.try_into().unwrap()) as usize,
            payload.len()
        );
        assert_eq!(payload[0], PROTOCOL_VERSION);
        assert_eq!(Message::decode(payload).unwrap(), msg);
    }

    fn edge(delete: bool) -> WireEdge {
        WireEdge {
            delete,
            src: 7,
            trg: 9,
            t: 1234,
            label: "a2q".to_string(),
        }
    }

    #[test]
    fn every_message_round_trips() {
        let msgs = vec![
            Message::Hello {
                client: "test".into(),
            },
            Message::Register {
                policy: Backpressure::Disconnect,
                buffer: 64,
                window: 720,
                slide: 24,
                query: "Ans(x, y) <- a2q+(x, y).".into(),
            },
            Message::Deregister { query: 3 },
            Message::Insert(edge(false)),
            Message::Delete(edge(true)),
            Message::Batch {
                edges: vec![edge(false), edge(true), edge(false)],
            },
            Message::Advance { t: u64::MAX },
            Message::Flush,
            Message::Metrics,
            Message::Shutdown,
            Message::Ping { token: 42 },
            Message::Welcome {
                server: "sgq-serve".into(),
            },
            Message::Registered { query: 0 },
            Message::Deregistered { query: 1, ok: true },
            Message::Result {
                query: 2,
                delete: false,
                src: 1,
                trg: 5,
                ts: 10,
                exp: 730,
            },
            Message::Dropped {
                query: 2,
                count: 17,
            },
            Message::MetricsSnapshot {
                jsonl: "{\"record\":\"exec\"}\n".into(),
            },
            Message::Pong { token: 42 },
            Message::Error {
                code: ERR_BAD_QUERY,
                message: "parse error".into(),
            },
            Message::Bye {
                reason: "shutdown".into(),
            },
        ];
        for m in msgs {
            round_trip(m);
        }
    }

    #[test]
    fn frame_reader_handles_eof_and_bounds() {
        // Clean EOF at a boundary.
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
        // EOF inside the length prefix.
        let mut short: &[u8] = &[0, 0];
        assert!(read_frame(&mut short).is_err());
        // EOF inside the payload.
        let mut truncated: &[u8] = &[0, 0, 0, 10, 1, 2, 3];
        assert!(read_frame(&mut truncated).is_err());
        // Oversized declared length.
        let huge = (MAX_FRAME_LEN + 1).to_be_bytes();
        let mut oversized: &[u8] = &huge;
        assert!(read_frame(&mut oversized).is_err());
        // Below the 2-byte (version + type) minimum.
        let mut tiny: &[u8] = &[0, 0, 0, 1, 9];
        assert!(read_frame(&mut tiny).is_err());
    }

    #[test]
    fn bad_version_is_fatal_unknown_type_is_not() {
        let err = Message::decode(&[9, 0x01, 0, 0]).unwrap_err();
        assert_eq!(err.code, ERR_BAD_VERSION);
        assert!(!err.recoverable);
        let err = Message::decode(&[PROTOCOL_VERSION, 0x7E]).unwrap_err();
        assert_eq!(err.code, ERR_UNKNOWN_TYPE);
        assert!(err.recoverable);
    }

    #[test]
    fn truncated_and_trailing_bodies_are_malformed() {
        // Register with a body cut mid-string.
        let mut frame = Message::Register {
            policy: Backpressure::DropNewest,
            buffer: 0,
            window: 10,
            slide: 1,
            query: "Ans(x, y) <- a(x, y).".into(),
        }
        .encode();
        frame.truncate(frame.len() - 4);
        let err = Message::decode(&frame[4..]).unwrap_err();
        assert_eq!(err.code, ERR_MALFORMED);
        // Trailing garbage after a well-formed body.
        let mut frame = Message::Flush.encode();
        frame.push(0xFF);
        let err = Message::decode(&frame[4..]).unwrap_err();
        assert_eq!(err.code, ERR_MALFORMED);
    }

    #[test]
    fn batch_count_lying_about_capacity_is_rejected() {
        // A batch frame declaring 1M edges in a 10-byte body.
        let mut payload = vec![PROTOCOL_VERSION, 0x06];
        payload.extend_from_slice(&1_000_000u32.to_be_bytes());
        let err = Message::decode(&payload).unwrap_err();
        assert_eq!(err.code, ERR_MALFORMED);
    }

    /// Pins the worked example of `docs/PROTOCOL.md` §7 byte for byte —
    /// if this test needs changing, the document does too.
    #[test]
    fn spec_worked_example_is_byte_exact() {
        let register = Message::Register {
            policy: Backpressure::DropNewest,
            buffer: 0,
            window: 100,
            slide: 10,
            query: "Ans(x, y) <- knows+(x, y).".into(),
        }
        .encode();
        let mut expect = vec![0x00, 0x00, 0x00, 0x33, 0x01, 0x02, 0x00];
        expect.extend_from_slice(&[0x00, 0x00, 0x00, 0x00]);
        expect.extend_from_slice(&100u64.to_be_bytes());
        expect.extend_from_slice(&10u64.to_be_bytes());
        expect.extend_from_slice(&[0x00, 0x1a]);
        expect.extend_from_slice(b"Ans(x, y) <- knows+(x, y).");
        assert_eq!(register, expect);

        let insert = Message::Insert(WireEdge {
            delete: false,
            src: 1,
            trg: 2,
            t: 5,
            label: "knows".into(),
        })
        .encode();
        assert_eq!(&insert[..4], &[0x00, 0x00, 0x00, 0x22]);
        assert_eq!(&insert[4..7], &[0x01, 0x04, 0x00]);

        let result = Message::Result {
            query: 0,
            delete: false,
            src: 1,
            trg: 2,
            ts: 5,
            exp: 105,
        }
        .encode();
        assert_eq!(&result[..4], &[0x00, 0x00, 0x00, 0x2b]);
        assert_eq!(result[result.len() - 1], 0x69);

        let pong = Message::Pong { token: 1 }.encode();
        assert_eq!(&pong[..6], &[0x00, 0x00, 0x00, 0x0a, 0x01, 0x87]);
    }

    #[test]
    fn message_stream_round_trips_through_io() {
        let mut buf = Vec::new();
        let msgs = [
            Message::Hello { client: "c".into() },
            Message::Ping { token: 1 },
            Message::Flush,
        ];
        for m in &msgs {
            write_message(&mut buf, m).unwrap();
        }
        let mut r: &[u8] = &buf;
        for m in &msgs {
            let got = read_message(&mut r).unwrap().unwrap().unwrap();
            assert_eq!(&got, m);
        }
        assert!(read_message(&mut r).unwrap().is_none());
    }
}
