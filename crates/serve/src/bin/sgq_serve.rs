//! `sgq-serve` — the long-running streaming query service host: binds a
//! TCP listener, owns one shared `MultiQueryEngine`, and speaks the
//! length-prefixed frame protocol documented in `docs/PROTOCOL.md`.
//!
//! ```text
//! sgq-serve --addr 127.0.0.1:7687 --metrics metrics.jsonl --metrics-every-ms 5000
//! sgq-serve --addr 127.0.0.1:0 --trace trace.jsonl --explicit-deletes
//! ```
//!
//! The host prints `listening on ADDR` once bound (port 0 picks a free
//! port — parse the line to discover it), then serves until a client
//! sends `SHUTDOWN` or the process receives SIGINT/SIGTERM, at which
//! point it drains the open epoch, routes every pending result, writes a
//! final metrics snapshot and the lifecycle trace, and says `BYE` to
//! every connection.

use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

use sgq_serve::server::{ServeConfig, Server};

const USAGE: &str = "\
usage:
  sgq-serve [--addr HOST:PORT] [--batch N] [--tick-ms N]
            [--metrics FILE(.jsonl|.csv)] [--metrics-every-ms N]
            [--trace FILE.jsonl] [--explicit-deletes]
            [--buffer N] [--retention TICKS]

  --addr             bind address (default 127.0.0.1:7687; port 0 = any free port)
  --batch            epoch flush threshold in edges (default 256)
  --tick-ms          wall-clock epoch flush interval (default 50)
  --metrics          append metrics snapshots here (.csv selects CSV, else JSONL);
                     a final snapshot is always written on shutdown
  --metrics-every-ms periodic snapshot interval (default: shutdown-only)
  --trace            write the structured lifecycle trace (JSONL) on shutdown
  --explicit-deletes accept DELETE frames (runs without duplicate suppression)
  --buffer           default per-subscription result-buffer capacity (frames)
  --retention        catch-up horizon in ticks for late registrations";

fn parse_flags(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7687".to_string(),
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--batch" => {
                cfg.batch_size = value("--batch")?
                    .parse()
                    .map_err(|_| "--batch expects an integer".to_string())?
            }
            "--tick-ms" => {
                let ms: u64 = value("--tick-ms")?
                    .parse()
                    .map_err(|_| "--tick-ms expects an integer".to_string())?;
                cfg.tick = Duration::from_millis(ms);
            }
            "--metrics" => cfg.metrics_path = Some(value("--metrics")?),
            "--metrics-every-ms" => {
                let ms: u64 = value("--metrics-every-ms")?
                    .parse()
                    .map_err(|_| "--metrics-every-ms expects an integer".to_string())?;
                cfg.metrics_every = Some(Duration::from_millis(ms));
            }
            "--trace" => cfg.trace_path = Some(value("--trace")?),
            "--explicit-deletes" => cfg.explicit_deletes = true,
            "--buffer" => {
                cfg.default_buffer = value("--buffer")?
                    .parse()
                    .map_err(|_| "--buffer expects an integer".to_string())?
            }
            "--retention" => {
                cfg.retention = Some(
                    value("--retention")?
                        .parse()
                        .map_err(|_| "--retention expects an integer".to_string())?,
                )
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cfg)
}

// Graceful-shutdown signal plumbing: a SIGINT/SIGTERM handler flips one
// process-global flag that the serve loop polls. `std` already links the
// platform C runtime, so registering the handler needs no extra crate.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    pub fn install() {}
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_flags(&args) {
        Ok(cfg) => cfg,
        Err(msg) if msg.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("sgq-serve: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    sig::install();
    let server = match Server::spawn(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sgq-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Tests and scripts parse this line to discover the bound port.
    println!("listening on {}", server.addr());

    // Relay process signals into the server's shutdown flag, then let
    // the graceful sequence (drain + final snapshot + BYE) run.
    let flag = server.shutdown_flag();
    while !flag.load(Ordering::SeqCst) {
        if sig::REQUESTED.load(Ordering::SeqCst) {
            flag.store(true, Ordering::SeqCst);
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    server.join();
    println!("sgq-serve: shut down cleanly");
    ExitCode::SUCCESS
}
