//! `sgq_serve` — the deployment layer of the s-graffito reproduction: a
//! long-running TCP host (`sgq-serve`) that turns the in-process
//! [`MultiQueryEngine`](sgq_multiquery::MultiQueryEngine) into a
//! *persistent-query service* in the sense of the paper (Pacaci,
//! Bonifati, Özsu, ICDE 2022): queries are registered at runtime,
//! unbounded edge streams are pushed at the host, and each subscriber
//! receives its query's result stream incrementally.
//!
//! Three public pieces:
//!
//! - [`protocol`] — the length-prefixed frame protocol (byte-exact spec
//!   in `docs/PROTOCOL.md`): typed messages for edge ingestion
//!   (insert/delete with explicit timestamps), register/deregister,
//!   barriers, metrics, shutdown.
//! - [`server`] — [`Server`]: the host itself. One
//!   engine thread owns the `MultiQueryEngine` and the epoch clock
//!   (flush on batch-size or wall-time tick); per-connection reader and
//!   writer threads; bounded per-subscription result buffers with a
//!   drop-with-counter or disconnect backpressure policy.
//! - [`client`] — [`Client`]: a small synchronous
//!   client used by the tests, the examples, and the README quickstart.
//!
//! Start a host in-process (tests do exactly this):
//!
//! ```
//! use sgq_serve::{client::Client, server::{ServeConfig, Server}};
//!
//! let server = Server::spawn(ServeConfig::default())?; // 127.0.0.1:0
//! let mut c = Client::connect(server.addr())?;
//! c.hello("doctest")?;
//! let q = c.register("Ans(x, y) <- knows+(x, y).", 100, 10)?;
//! c.insert(1, 2, "knows", 1)?;
//! c.insert(2, 3, "knows", 2)?;
//! c.barrier()?;
//! let results = c.take_results();
//! assert_eq!(results.len(), 3); // (1,2), (2,3), (1,3)
//! assert!(c.deregister(q)?);
//! server.shutdown();
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ResultRow};
pub use protocol::{Backpressure, Message, WireEdge, PROTOCOL_VERSION};
pub use server::{ServeConfig, Server};
