//! The `sgq-serve` host: a TCP listener plus a single engine thread that
//! owns one [`MultiQueryEngine`] and processes every connection's
//! commands in one global arrival order.
//!
//! # Threading model
//!
//! ```text
//!              accept thread (nonblocking accept + shutdown poll)
//!                    │ spawns per connection
//!        ┌───────────┴───────────┐
//!   reader thread           writer thread
//!   frames → Command        Outbox → socket
//!        │                       ▲
//!        ▼                       │ bounded per-subscription
//!   mpsc::Sender ───────► engine thread (owns MultiQueryEngine,
//!                          epoch buffer, subscriptions, timers)
//! ```
//!
//! Determinism: the engine thread is the only consumer of the command
//! queue, so all state transitions happen in one serial order; the
//! repo's batching-equivalence guarantee (result logs are bit-identical
//! under arbitrary batch splits) then makes the host's epoch chunking
//! (batch-size/tick flushes) invisible to subscribers. Clients that need
//! a cross-connection ordering point send [`Message::Ping`]: the reply
//! is emitted only after everything received earlier has been fully
//! processed and routed.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sgq_core::engine::EngineOptions;
use sgq_core::obs::JsonlTraceSink;
use sgq_multiquery::{MultiQueryEngine, QueryId};
use sgq_query::{parse_program, SgqQuery, WindowSpec};
use sgq_types::Sge;

use crate::protocol::{
    read_message, Backpressure, Message, WireEdge, ERR_BAD_QUERY, ERR_MALFORMED, ERR_NOT_SUPPORTED,
    ERR_OUT_OF_ORDER, ERR_SLOW_CONSUMER, ERR_UNKNOWN_QUERY,
};

/// Host configuration (all knobs the `sgq-serve` binary exposes as
/// flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7687` (port 0 picks a free port).
    pub addr: String,
    /// Epoch flush threshold: buffered edges are ingested as one batch
    /// once this many are pending.
    pub batch_size: usize,
    /// Wall-clock epoch tick: pending edges are flushed at least this
    /// often even when the batch never fills.
    pub tick: Duration,
    /// Periodic metrics dump interval (`None` disables the timer; a
    /// final snapshot is still written on shutdown).
    pub metrics_every: Option<Duration>,
    /// Metrics dump path. Snapshots are **appended**; a `.csv` extension
    /// selects `MetricsSnapshot::to_csv`, anything else JSONL.
    pub metrics_path: Option<String>,
    /// Structured lifecycle trace (JSONL), written on shutdown.
    pub trace_path: Option<String>,
    /// Accept explicit `DELETE` frames (§6.2.5). Runs the engine with
    /// `suppress_duplicates = false` so insert/delete emissions cancel
    /// exactly; the default duplicate-suppressing mode rejects `DELETE`
    /// with [`ERR_NOT_SUPPORTED`].
    pub explicit_deletes: bool,
    /// Default per-subscription result-buffer capacity (frames), used
    /// when a `REGISTER` passes `buffer = 0`.
    pub default_buffer: u32,
    /// Retention horizon in ticks for late-registration catch-up
    /// (`None` keeps the engine default).
    pub retention: Option<u64>,
    /// Server identification echoed in `WELCOME`.
    pub name: String,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            batch_size: 256,
            tick: Duration::from_millis(50),
            metrics_every: None,
            metrics_path: None,
            trace_path: None,
            explicit_deletes: false,
            default_buffer: 65536,
            retention: None,
            name: "sgq-serve".to_string(),
        }
    }
}

type ConnId = u64;

/// Commands flowing from connection reader threads to the engine thread.
enum Command {
    Connect(ConnId, Arc<Outbox>),
    Disconnect(ConnId),
    Frame(ConnId, Message),
    /// A recoverable decode failure: report and keep the connection.
    SoftError(ConnId, u16, String),
}

// ---------------------------------------------------------------------
// Outbox: the bounded per-connection send queue
// ---------------------------------------------------------------------

enum Entry {
    Control(Vec<u8>),
    /// A result frame counted against its subscription's cap.
    Result(u64, Vec<u8>),
}

#[derive(Default)]
struct OutboxInner {
    queue: VecDeque<Entry>,
    /// Queued-but-unsent result frames per query id — the bounded
    /// buffer the backpressure policy acts on.
    per_query: HashMap<u64, u32>,
    closed: bool,
}

/// The per-connection send queue. Control frames (replies, errors,
/// metrics, `BYE`) always enqueue; result frames are bounded per
/// subscription and the engine thread applies the subscription's
/// [`Backpressure`] policy when the cap is hit.
pub(crate) struct Outbox {
    inner: Mutex<OutboxInner>,
    cv: Condvar,
}

impl Outbox {
    fn new() -> Arc<Outbox> {
        Arc::new(Outbox {
            inner: Mutex::new(OutboxInner::default()),
            cv: Condvar::new(),
        })
    }

    fn push_control(&self, frame: Vec<u8>) {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return;
        }
        g.queue.push_back(Entry::Control(frame));
        self.cv.notify_one();
    }

    /// Enqueues a result frame unless the subscription's buffer is full.
    /// Returns `false` when at capacity (the caller applies the policy).
    fn push_result(&self, query: u64, frame: Vec<u8>, cap: u32) -> bool {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            // A closing connection accepts-and-discards: the Disconnect
            // command is already in flight.
            return true;
        }
        let count = g.per_query.entry(query).or_insert(0);
        if *count >= cap {
            return false;
        }
        *count += 1;
        g.queue.push_back(Entry::Result(query, frame));
        self.cv.notify_one();
        true
    }

    fn close(&self) {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        self.cv.notify_all();
    }

    /// Blocks for the next frame; `None` once closed and drained.
    fn pop(&self) -> Option<Vec<u8>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(e) = g.queue.pop_front() {
                return Some(match e {
                    Entry::Control(f) => f,
                    Entry::Result(q, f) => {
                        if let Some(c) = g.per_query.get_mut(&q) {
                            *c = c.saturating_sub(1);
                        }
                        f
                    }
                });
            }
            if g.closed {
                return None;
            }
            g = self.cv.wait(g).unwrap();
        }
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// A running host. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the accept + engine threads.
    pub fn spawn(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Command>();

        let engine = {
            let cfg = cfg.clone();
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("sgq-serve-engine".into())
                .spawn(move || EngineLoop::new(cfg, shutdown).run(rx))?
        };

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("sgq-serve-accept".into())
                .spawn(move || accept_loop(listener, tx, shutdown))?
        };

        Ok(Server {
            addr,
            shutdown,
            accept: Some(accept),
            engine: Some(engine),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown flag — set it (e.g. from a signal handler) to start
    /// a graceful drain.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Requests a graceful shutdown (drain + final snapshot + `BYE`).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept and engine threads to finish.
    pub fn join(mut self) {
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, tx: mpsc::Sender<Command>, shutdown: Arc<AtomicBool>) {
    let mut next_conn: ConnId = 1;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn = next_conn;
                next_conn += 1;
                if spawn_connection(conn, stream, tx.clone()).is_err() {
                    // Thread spawn failure: drop the connection.
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn spawn_connection(conn: ConnId, stream: TcpStream, tx: mpsc::Sender<Command>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_nonblocking(false).ok();
    let outbox = Outbox::new();
    let _ = tx.send(Command::Connect(conn, Arc::clone(&outbox)));

    let write_stream = stream.try_clone()?;
    let writer_outbox = Arc::clone(&outbox);
    thread::Builder::new()
        .name(format!("sgq-serve-w{conn}"))
        .spawn(move || writer_loop(write_stream, writer_outbox))?;

    thread::Builder::new()
        .name(format!("sgq-serve-r{conn}"))
        .spawn(move || reader_loop(conn, stream, tx, outbox))?;
    Ok(())
}

fn writer_loop(mut stream: TcpStream, outbox: Arc<Outbox>) {
    while let Some(frame) = outbox.pop() {
        if stream.write_all(&frame).is_err() {
            outbox.close();
            break;
        }
    }
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn reader_loop(
    conn: ConnId,
    mut stream: TcpStream,
    tx: mpsc::Sender<Command>,
    outbox: Arc<Outbox>,
) {
    loop {
        match read_message(&mut stream) {
            // Clean EOF at a frame boundary: the client hung up.
            Ok(None) => break,
            Ok(Some(Ok(msg))) => {
                if tx.send(Command::Frame(conn, msg)).is_err() {
                    break;
                }
            }
            Ok(Some(Err(err))) if err.recoverable => {
                let _ = tx.send(Command::SoftError(conn, err.code, err.message));
            }
            Ok(Some(Err(err))) => {
                // The byte stream can no longer be trusted.
                outbox.push_control(
                    Message::Error {
                        code: err.code,
                        message: err.message,
                    }
                    .encode(),
                );
                outbox.push_control(
                    Message::Bye {
                        reason: "fatal protocol error".into(),
                    }
                    .encode(),
                );
                break;
            }
            Err(e) => {
                // Framing-level failure: truncated frame or oversized
                // declared length. Tell the client why if it can still
                // hear us, then close.
                let code = if e.kind() == io::ErrorKind::InvalidData {
                    crate::protocol::ERR_OVERSIZED
                } else {
                    ERR_MALFORMED
                };
                outbox.push_control(
                    Message::Error {
                        code,
                        message: e.to_string(),
                    }
                    .encode(),
                );
                outbox.push_control(
                    Message::Bye {
                        reason: "framing error".into(),
                    }
                    .encode(),
                );
                break;
            }
        }
    }
    outbox.close();
    let _ = tx.send(Command::Disconnect(conn));
}

// ---------------------------------------------------------------------
// Engine thread
// ---------------------------------------------------------------------

struct Subscription {
    conn: ConnId,
    policy: Backpressure,
    cap: u32,
    /// Cursor into `deleted_results(id)` — `drain` covers inserts only.
    deleted_cursor: usize,
    /// Result frames dropped since the last `DROPPED` report
    /// (drop-newest policy).
    dropped: u64,
}

struct EngineLoop {
    cfg: ServeConfig,
    shutdown: Arc<AtomicBool>,
    engine: MultiQueryEngine,
    trace: JsonlTraceSink,
    conns: HashMap<ConnId, Arc<Outbox>>,
    /// Ordered so result routing visits queries deterministically.
    subs: BTreeMap<QueryId, Subscription>,
    pending: Vec<Sge>,
    /// Host watermark: the largest timestamp accepted so far.
    watermark: u64,
    /// Edges discarded because no registered query references their
    /// label (§7.2.1 semantics) or because they predate the watermark.
    discarded_edges: u64,
}

impl EngineLoop {
    fn new(cfg: ServeConfig, shutdown: Arc<AtomicBool>) -> EngineLoop {
        let mut opts = EngineOptions::default();
        if cfg.explicit_deletes {
            opts.suppress_duplicates = false;
        }
        let mut engine = MultiQueryEngine::with_options(opts);
        if let Some(h) = cfg.retention {
            engine.set_retention_horizon(h);
        }
        let trace = JsonlTraceSink::new();
        engine.set_trace_sink(Box::new(trace.clone()));
        EngineLoop {
            cfg,
            shutdown,
            engine,
            trace,
            conns: HashMap::new(),
            subs: BTreeMap::new(),
            pending: Vec::new(),
            watermark: 0,
            discarded_edges: 0,
        }
    }

    fn run(mut self, rx: mpsc::Receiver<Command>) {
        let mut last_tick = Instant::now();
        let mut last_metrics = Instant::now();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match rx.recv_timeout(Duration::from_millis(10)) {
                Ok(cmd) => {
                    self.handle(cmd);
                    // Drain whatever else is already queued before
                    // checking timers: one lock round per wakeup.
                    while let Ok(cmd) = rx.try_recv() {
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        self.handle(cmd);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if last_tick.elapsed() >= self.cfg.tick {
                self.flush_epoch();
                last_tick = Instant::now();
            }
            if let Some(every) = self.cfg.metrics_every {
                if last_metrics.elapsed() >= every {
                    self.dump_metrics();
                    last_metrics = Instant::now();
                }
            }
        }
        self.graceful_shutdown();
    }

    /// Queues a control frame on a connection's outbox (no-op once the
    /// connection is gone).
    fn send(&self, conn: ConnId, msg: Message) {
        if let Some(outbox) = self.conns.get(&conn) {
            outbox.push_control(msg.encode());
        }
    }

    fn handle(&mut self, cmd: Command) {
        match cmd {
            Command::Connect(conn, outbox) => {
                self.conns.insert(conn, outbox);
            }
            Command::Disconnect(conn) => self.drop_connection(conn, None),
            Command::SoftError(conn, code, message) => {
                self.send(conn, Message::Error { code, message });
            }
            Command::Frame(conn, msg) => self.handle_frame(conn, msg),
        }
    }

    fn handle_frame(&mut self, conn: ConnId, msg: Message) {
        match msg {
            Message::Hello { client: _ } => {
                self.send(
                    conn,
                    Message::Welcome {
                        server: self.cfg.name.clone(),
                    },
                );
            }
            Message::Register {
                policy,
                buffer,
                window,
                slide,
                query,
            } => self.register(conn, policy, buffer, window, slide, &query),
            Message::Deregister { query } => self.deregister(conn, query),
            Message::Insert(e) => self.insert(conn, e),
            Message::Delete(e) => self.delete(conn, e),
            Message::Batch { edges } => {
                for e in edges {
                    if e.delete {
                        self.delete(conn, e);
                    } else {
                        self.insert(conn, e);
                    }
                }
            }
            Message::Advance { t } => {
                if t < self.watermark {
                    self.send(
                        conn,
                        Message::Error {
                            code: ERR_OUT_OF_ORDER,
                            message: format!("advance to {t} behind watermark {}", self.watermark),
                        },
                    );
                    return;
                }
                self.flush_epoch();
                self.watermark = t;
                self.engine.advance_time(t);
                self.route_results();
            }
            Message::Flush => {
                self.flush_epoch();
                self.report_drops();
            }
            Message::Metrics => {
                self.flush_epoch();
                let jsonl = self.engine.metrics_snapshot().to_jsonl();
                self.send(conn, Message::MetricsSnapshot { jsonl });
            }
            Message::Shutdown => {
                // The graceful sequence runs when the loop observes the
                // flag; everything already queued ahead of this frame
                // has been processed (single consumer).
                self.shutdown.store(true, Ordering::SeqCst);
            }
            Message::Ping { token } => {
                // Full barrier: everything received before this frame is
                // processed and routed before the pong is queued, and
                // the pong is ordered after those result frames in the
                // connection's outbox.
                self.flush_epoch();
                self.report_drops();
                self.send(conn, Message::Pong { token });
            }
            // Server→client types arriving from a client are a protocol
            // violation, but a recoverable one.
            other => self.send(
                conn,
                Message::Error {
                    code: ERR_MALFORMED,
                    message: format!(
                        "unexpected message type 0x{:02x} from client",
                        other.type_byte()
                    ),
                },
            ),
        }
    }

    fn register(
        &mut self,
        conn: ConnId,
        policy: Backpressure,
        buffer: u32,
        window: u64,
        slide: u64,
        query: &str,
    ) {
        // Order the registration against the edges already received.
        self.flush_epoch();
        let program = match parse_program(query) {
            Ok(p) => p,
            Err(e) => {
                self.send(
                    conn,
                    Message::Error {
                        code: ERR_BAD_QUERY,
                        message: format!("{e:?}"),
                    },
                );
                return;
            }
        };
        if window == 0 || slide == 0 {
            self.send(
                conn,
                Message::Error {
                    code: ERR_BAD_QUERY,
                    message: "window and slide must be positive".into(),
                },
            );
            return;
        }
        let q = SgqQuery::new(program, WindowSpec::new(window, slide));
        let id = self.engine.register(&q);
        let cap = if buffer == 0 {
            self.cfg.default_buffer
        } else {
            buffer
        };
        self.subs.insert(
            id,
            Subscription {
                conn,
                policy,
                cap,
                deleted_cursor: 0,
                dropped: 0,
            },
        );
        self.send(conn, Message::Registered { query: id.0 });
        // Late registration catch-up: results the engine replays into
        // the new query's log stream out immediately.
        self.route_results();
    }

    fn deregister(&mut self, conn: ConnId, raw: u64) {
        let id = QueryId(raw);
        let owned = self.subs.get(&id).map(|s| s.conn) == Some(conn);
        if !owned {
            self.send(
                conn,
                Message::Error {
                    code: ERR_UNKNOWN_QUERY,
                    message: format!("query {raw} is not registered on this connection"),
                },
            );
            self.send(
                conn,
                Message::Deregistered {
                    query: raw,
                    ok: false,
                },
            );
            return;
        }
        // Route everything the query produced up to this point first, so
        // a deregistering subscriber still sees its final results.
        self.flush_epoch();
        let ok = self.engine.deregister(id);
        self.subs.remove(&id);
        self.send(conn, Message::Deregistered { query: raw, ok });
    }

    fn accept_edge(&mut self, conn: ConnId, e: &WireEdge) -> Option<Sge> {
        if e.t < self.watermark {
            self.discarded_edges += 1;
            self.send(
                conn,
                Message::Error {
                    code: ERR_OUT_OF_ORDER,
                    message: format!("edge at t={} behind watermark {}", e.t, self.watermark),
                },
            );
            return None;
        }
        // Labels no registered query references are discarded, mirroring
        // the §7.2.1 resolve step (the engine's interner only knows
        // labels that appear in some registered query).
        let label = match self.engine.labels().get(&e.label) {
            Some(l) => l,
            None => {
                self.discarded_edges += 1;
                return None;
            }
        };
        self.watermark = e.t;
        Some(Sge::raw(e.src, e.trg, label, e.t))
    }

    fn insert(&mut self, conn: ConnId, e: WireEdge) {
        if let Some(sge) = self.accept_edge(conn, &e) {
            self.pending.push(sge);
            if self.pending.len() >= self.cfg.batch_size {
                self.flush_epoch();
            }
        }
    }

    fn delete(&mut self, conn: ConnId, e: WireEdge) {
        if !self.cfg.explicit_deletes {
            self.send(
                conn,
                Message::Error {
                    code: ERR_NOT_SUPPORTED,
                    message: "host runs in append-only mode (start with --explicit-deletes)".into(),
                },
            );
            return;
        }
        if let Some(sge) = self.accept_edge(conn, &e) {
            // Deletions are ordered against buffered inserts.
            self.flush_epoch();
            self.engine.delete(sge);
            self.route_results();
        }
    }

    /// Ingests the pending epoch and routes the fresh results.
    fn flush_epoch(&mut self) {
        if !self.pending.is_empty() {
            let batch = std::mem::take(&mut self.pending);
            self.engine.ingest_batch(&batch);
        }
        self.route_results();
    }

    /// Drains every subscription's cursors and pushes result frames,
    /// applying the backpressure policy on full buffers.
    fn route_results(&mut self) {
        let mut evict: Vec<ConnId> = Vec::new();
        let qids: Vec<QueryId> = self.subs.keys().copied().collect();
        for id in qids {
            let fresh = self.engine.drain(id);
            let deleted: Vec<_> = {
                let sub = &self.subs[&id];
                self.engine.deleted_results(id)[sub.deleted_cursor..].to_vec()
            };
            let sub = self.subs.get_mut(&id).unwrap();
            sub.deleted_cursor += deleted.len();
            let Some(outbox) = self.conns.get(&sub.conn) else {
                continue;
            };
            let inserts = fresh.iter().map(|s| (false, s));
            let deletes = deleted.iter().map(|s| (true, s));
            for (del, sgt) in inserts.chain(deletes) {
                let frame = Message::Result {
                    query: id.0,
                    delete: del,
                    src: sgt.src.0,
                    trg: sgt.trg.0,
                    ts: sgt.interval.ts,
                    exp: sgt.interval.exp,
                }
                .encode();
                if !outbox.push_result(id.0, frame, sub.cap) {
                    match sub.policy {
                        Backpressure::DropNewest => sub.dropped += 1,
                        Backpressure::Disconnect => {
                            evict.push(sub.conn);
                            break;
                        }
                    }
                }
            }
        }
        for conn in evict {
            self.drop_connection(conn, Some("slow consumer"));
        }
    }

    /// Emits `DROPPED` reports for lossy subscriptions (at barriers).
    fn report_drops(&mut self) {
        let reports: Vec<(ConnId, u64, u64)> = self
            .subs
            .iter_mut()
            .filter(|(_, s)| s.dropped > 0)
            .map(|(id, s)| {
                let r = (s.conn, id.0, s.dropped);
                s.dropped = 0;
                r
            })
            .collect();
        for (conn, query, count) in reports {
            self.send(conn, Message::Dropped { query, count });
        }
    }

    /// Tears down a connection: deregisters its subscriptions and closes
    /// its outbox. `reason` is `Some` for server-initiated eviction.
    fn drop_connection(&mut self, conn: ConnId, reason: Option<&str>) {
        let owned: Vec<QueryId> = self
            .subs
            .iter()
            .filter(|(_, s)| s.conn == conn)
            .map(|(id, _)| *id)
            .collect();
        for id in owned {
            self.engine.deregister(id);
            self.subs.remove(&id);
        }
        if let Some(outbox) = self.conns.remove(&conn) {
            if let Some(reason) = reason {
                outbox.push_control(
                    Message::Error {
                        code: ERR_SLOW_CONSUMER,
                        message: reason.to_string(),
                    }
                    .encode(),
                );
                outbox.push_control(
                    Message::Bye {
                        reason: reason.to_string(),
                    }
                    .encode(),
                );
            }
            outbox.close();
        }
    }

    fn dump_metrics(&mut self) {
        let Some(path) = self.cfg.metrics_path.clone() else {
            return;
        };
        let snap = self.engine.metrics_snapshot();
        let doc = if path.ends_with(".csv") {
            snap.to_csv()
        } else {
            snap.to_jsonl()
        };
        let _ = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(doc.as_bytes()));
    }

    fn graceful_shutdown(&mut self) {
        // Drain: flush the open epoch, route every result, report drops.
        self.flush_epoch();
        self.report_drops();
        self.dump_metrics();
        if let Some(path) = &self.cfg.trace_path {
            let _ = self.trace.write_to(path);
        }
        let conns: Vec<ConnId> = self.conns.keys().copied().collect();
        for conn in conns {
            if let Some(outbox) = self.conns.get(&conn) {
                outbox.push_control(
                    Message::Bye {
                        reason: "shutdown".into(),
                    }
                    .encode(),
                );
            }
            self.drop_connection(conn, None);
        }
        let _ = self.discarded_edges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_bounds_results_but_not_control() {
        let outbox = Outbox::new();
        // Cap 2: third result frame is refused.
        assert!(outbox.push_result(7, vec![1], 2));
        assert!(outbox.push_result(7, vec![2], 2));
        assert!(!outbox.push_result(7, vec![3], 2));
        // A different subscription has its own budget.
        assert!(outbox.push_result(8, vec![4], 2));
        // Control frames bypass the cap.
        outbox.push_control(vec![5]);
        // Popping frees budget.
        assert_eq!(outbox.pop(), Some(vec![1]));
        assert!(outbox.push_result(7, vec![6], 2));
        outbox.close();
        // Drain the rest, then None.
        let mut rest = Vec::new();
        while let Some(f) = outbox.pop() {
            rest.push(f);
        }
        assert_eq!(rest, vec![vec![2], vec![4], vec![5], vec![6]]);
        assert!(outbox.pop().is_none());
        // Closed outboxes accept-and-discard.
        assert!(outbox.push_result(7, vec![9], 2));
        assert!(outbox.pop().is_none());
    }
}
