//! A small synchronous client for the `sgq-serve` protocol, used by the
//! integration tests, the examples, and the README quickstart.
//!
//! The client is deliberately single-threaded: requests are sent, and
//! the reply is awaited on the same socket. Result frames that arrive
//! while waiting (the server pushes them whenever an epoch closes) are
//! stashed in an inbox and retrieved with [`Client::take_results`].
//! [`Client::barrier`] is the sequencing primitive: when it returns,
//! every frame sent before it has been fully processed by the host and
//! all results it produced are in the inbox.
//!
//! ```no_run
//! use sgq_serve::client::Client;
//!
//! let mut c = Client::connect("127.0.0.1:7687")?;
//! c.hello("doc-example")?;
//! let q = c.register("Ans(x, y) <- a2q*(x, y).", 720, 24)?;
//! c.insert(1, 2, "a2q", 10)?;
//! c.barrier()?;
//! for r in c.take_results() {
//!     println!("q{}: {} -> {} valid [{}, {})", r.query, r.src, r.trg, r.ts, r.exp);
//! }
//! c.deregister(q)?;
//! # Ok::<(), std::io::Error>(())
//! ```

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{read_message, Backpressure, Message, WireEdge};

/// One result tuple received from the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ResultRow {
    /// The producing query's id.
    pub query: u64,
    /// `true` for a retraction (explicit-deletion mode).
    pub delete: bool,
    /// Result source vertex.
    pub src: u64,
    /// Result target vertex.
    pub trg: u64,
    /// Validity interval start (inclusive).
    pub ts: u64,
    /// Validity interval end (exclusive).
    pub exp: u64,
}

/// A synchronous `sgq-serve` connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    inbox: Vec<ResultRow>,
    /// Accumulated drop counts per query id (drop-newest backpressure).
    dropped: HashMap<u64, u64>,
    next_token: u64,
    /// Set once the server says `BYE`.
    closed: Option<String>,
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connects to a host.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client {
            reader,
            writer,
            inbox: Vec::new(),
            dropped: HashMap::new(),
            next_token: 1,
            closed: None,
        })
    }

    fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.writer.write_all(&msg.encode())?;
        self.writer.flush()
    }

    /// Sends a frame without waiting for anything (the streaming ingest
    /// fast path). The write is buffered; any awaited call flushes.
    fn send_unflushed(&mut self, msg: &Message) -> io::Result<()> {
        self.writer.write_all(&msg.encode())
    }

    /// Receives the next server frame, surfacing decode failures.
    fn recv(&mut self) -> io::Result<Message> {
        match read_message(&mut self.reader)? {
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Some(Ok(msg)) => Ok(msg),
            Some(Err(e)) => Err(proto_err(e.to_string())),
        }
    }

    /// Receives frames until `want` returns `Some`, stashing result and
    /// drop frames encountered along the way.
    fn await_reply<T>(
        &mut self,
        mut want: impl FnMut(&Message) -> Option<Result<T, io::Error>>,
    ) -> io::Result<T> {
        loop {
            let msg = self.recv()?;
            if let Some(out) = want(&msg) {
                return out;
            }
            match msg {
                Message::Result {
                    query,
                    delete,
                    src,
                    trg,
                    ts,
                    exp,
                } => self.inbox.push(ResultRow {
                    query,
                    delete,
                    src,
                    trg,
                    ts,
                    exp,
                }),
                Message::Dropped { query, count } => {
                    *self.dropped.entry(query).or_insert(0) += count;
                }
                Message::Bye { reason } => {
                    self.closed = Some(reason.clone());
                    return Err(proto_err(format!("server closed the session: {reason}")));
                }
                Message::Error { code, message } => {
                    return Err(proto_err(format!("server error {code}: {message}")));
                }
                _ => {
                    // Unsolicited reply to an earlier fire-and-forget
                    // frame (e.g. a pong raced with a metrics reply) —
                    // benign, skip it.
                }
            }
        }
    }

    /// `HELLO` → the server's identification string.
    pub fn hello(&mut self, name: &str) -> io::Result<String> {
        self.send(&Message::Hello {
            client: name.to_string(),
        })?;
        self.await_reply(|m| match m {
            Message::Welcome { server } => Some(Ok(server.clone())),
            _ => None,
        })
    }

    /// Registers a query with the default backpressure policy and
    /// buffer; returns the host-assigned query id.
    pub fn register(&mut self, query: &str, window: u64, slide: u64) -> io::Result<u64> {
        self.register_with(query, window, slide, Backpressure::DropNewest, 0)
    }

    /// Registers a query with an explicit slow-consumer policy and
    /// result-buffer capacity (`0` = server default).
    pub fn register_with(
        &mut self,
        query: &str,
        window: u64,
        slide: u64,
        policy: Backpressure,
        buffer: u32,
    ) -> io::Result<u64> {
        self.send(&Message::Register {
            policy,
            buffer,
            window,
            slide,
            query: query.to_string(),
        })?;
        self.await_reply(|m| match m {
            Message::Registered { query } => Some(Ok(*query)),
            _ => None,
        })
    }

    /// Deregisters a query; `Ok(true)` when the host knew it.
    pub fn deregister(&mut self, query: u64) -> io::Result<bool> {
        self.send(&Message::Deregister { query })?;
        self.await_reply(move |m| match m {
            Message::Deregistered { query: q, ok } if *q == query => Some(Ok(*ok)),
            // The paired not-owned error precedes the Deregistered
            // frame; report the flag, not the error.
            Message::Error { .. } => Some(Ok(false)),
            _ => None,
        })
    }

    /// Streams one edge insertion (buffered; flushed by the next awaited
    /// call or [`Client::barrier`]).
    pub fn insert(&mut self, src: u64, trg: u64, label: &str, t: u64) -> io::Result<()> {
        self.send_unflushed(&Message::Insert(WireEdge {
            delete: false,
            src,
            trg,
            t,
            label: label.to_string(),
        }))
    }

    /// Streams one explicit edge deletion (host must run with
    /// `--explicit-deletes`).
    pub fn delete(&mut self, src: u64, trg: u64, label: &str, t: u64) -> io::Result<()> {
        self.send_unflushed(&Message::Delete(WireEdge {
            delete: true,
            src,
            trg,
            t,
            label: label.to_string(),
        }))
    }

    /// Streams a timestamp-ordered batch in one frame.
    pub fn batch(&mut self, edges: Vec<WireEdge>) -> io::Result<()> {
        self.send_unflushed(&Message::Batch { edges })
    }

    /// Advances host event time without ingesting.
    pub fn advance(&mut self, t: u64) -> io::Result<()> {
        self.send_unflushed(&Message::Advance { t })
    }

    /// Asks the host to close the open epoch now.
    pub fn flush(&mut self) -> io::Result<()> {
        self.send(&Message::Flush)
    }

    /// Full sequencing barrier: returns once the host has processed and
    /// routed everything sent before it. All results produced are in
    /// the inbox afterwards.
    pub fn barrier(&mut self) -> io::Result<()> {
        let token = self.next_token;
        self.next_token += 1;
        self.send(&Message::Ping { token })?;
        self.await_reply(move |m| match m {
            Message::Pong { token: t } if *t == token => Some(Ok(())),
            _ => None,
        })
    }

    /// Requests a metrics snapshot; returns the JSONL document.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.send(&Message::Metrics)?;
        self.await_reply(|m| match m {
            Message::MetricsSnapshot { jsonl } => Some(Ok(jsonl.clone())),
            _ => None,
        })
    }

    /// Asks the host to shut down gracefully and waits for its `BYE`.
    pub fn shutdown(&mut self) -> io::Result<String> {
        self.send(&Message::Shutdown)?;
        loop {
            match self.recv() {
                Ok(Message::Bye { reason }) => {
                    self.closed = Some(reason.clone());
                    return Ok(reason);
                }
                Ok(Message::Result {
                    query,
                    delete,
                    src,
                    trg,
                    ts,
                    exp,
                }) => self.inbox.push(ResultRow {
                    query,
                    delete,
                    src,
                    trg,
                    ts,
                    exp,
                }),
                Ok(_) => {}
                // The server may close the socket right after (or
                // instead of flushing) the BYE.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    self.closed = Some("eof".into());
                    return Ok("eof".into());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Takes every result received so far (in arrival order).
    pub fn take_results(&mut self) -> Vec<ResultRow> {
        std::mem::take(&mut self.inbox)
    }

    /// Total result frames the host reported dropping for `query`
    /// (drop-newest backpressure), as of the last barrier.
    pub fn dropped(&self, query: u64) -> u64 {
        self.dropped.get(&query).copied().unwrap_or(0)
    }

    /// `Some(reason)` once the server has said `BYE`.
    pub fn closed(&self) -> Option<&str> {
        self.closed.as_deref()
    }

    /// Reads server frames until the socket closes, stashing results —
    /// used by tests that expect a server-initiated disconnect (e.g. the
    /// `Disconnect` backpressure policy).
    pub fn drain_until_closed(&mut self) -> io::Result<String> {
        loop {
            match read_message(&mut self.reader)? {
                None => {
                    let reason = self.closed.clone().unwrap_or_else(|| "eof".into());
                    return Ok(reason);
                }
                Some(Ok(Message::Bye { reason })) => {
                    self.closed = Some(reason);
                }
                Some(Ok(Message::Result {
                    query,
                    delete,
                    src,
                    trg,
                    ts,
                    exp,
                })) => self.inbox.push(ResultRow {
                    query,
                    delete,
                    src,
                    trg,
                    ts,
                    exp,
                }),
                Some(Ok(_)) | Some(Err(_)) => {}
            }
        }
    }

    /// Low-level escape hatch: sends a raw frame (malformed-input tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Low-level escape hatch: receives the next decoded frame.
    pub fn recv_message(&mut self) -> io::Result<Message> {
        self.recv()
    }
}
