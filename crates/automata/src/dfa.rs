//! Deterministic finite automata: subset construction + Hopcroft
//! minimization, with the reverse transition index used by S-PATH.
//!
//! The DFA is *partial*: a missing transition rejects. State `0` is always
//! the start state. [`Dfa::transitions_on`] answers the S-PATH arrival
//! probe "for each `s, t` where `t = δ(s, l)`" in O(#matching transitions).

use crate::nfa::Nfa;
use crate::regex::Regex;
use sgq_types::{FxHashMap, FxHashSet, Label};

/// A DFA state index (start is always `0`).
pub type StateId = u32;

/// A minimized, partial DFA over the label alphabet.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// `trans[s]` maps labels to successor states.
    trans: Vec<FxHashMap<Label, StateId>>,
    /// `outgoing[s]`: the same transitions as `(label, target)` pairs
    /// sorted by label — the iteration surface, so traversal order depends
    /// on label *order*, not label-id hashes (see `transitions_from`).
    outgoing: Vec<Vec<(Label, StateId)>>,
    /// `accepting[s]` iff `s ∈ F`.
    accepting: Vec<bool>,
    /// Reverse index: label → `(from, to)` transition pairs.
    by_label: FxHashMap<Label, Vec<(StateId, StateId)>>,
    /// Labels usable from the start state (for quick source-edge checks).
    start_labels: FxHashSet<Label>,
}

impl Dfa {
    /// `ConstructDFA(R)` (Algorithm S-PATH line 1): Thompson NFA → subset
    /// construction → Hopcroft minimization.
    pub fn from_regex(re: &Regex) -> Dfa {
        let nfa = Nfa::from_regex(re);
        let (trans, accepting) = subset_construction(&nfa, &re.alphabet());
        let (trans, accepting) = hopcroft_minimize(trans, accepting);
        Dfa::from_parts(trans, accepting)
    }

    fn from_parts(trans: Vec<FxHashMap<Label, StateId>>, accepting: Vec<bool>) -> Dfa {
        let mut by_label: FxHashMap<Label, Vec<(StateId, StateId)>> = FxHashMap::default();
        let mut start_labels = FxHashSet::default();
        for (s, map) in trans.iter().enumerate() {
            for (&l, &t) in map {
                by_label.entry(l).or_default().push((s as StateId, t));
                if s == 0 {
                    start_labels.insert(l);
                }
            }
        }
        // Deterministic iteration order for reproducible runs.
        for v in by_label.values_mut() {
            v.sort_unstable();
        }
        let outgoing: Vec<Vec<(Label, StateId)>> = trans
            .iter()
            .map(|m| {
                let mut v: Vec<(Label, StateId)> = m.iter().map(|(&l, &t)| (l, t)).collect();
                v.sort_unstable();
                v
            })
            .collect();
        Dfa {
            trans,
            outgoing,
            accepting,
            by_label,
            start_labels,
        }
    }

    /// The start state `s₀`.
    #[inline]
    pub fn start(&self) -> StateId {
        0
    }

    /// Number of states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// `δ(s, l)`, or `None` (reject).
    #[inline]
    pub fn delta(&self, s: StateId, l: Label) -> Option<StateId> {
        self.trans[s as usize].get(&l).copied()
    }

    /// Whether `s ∈ F`.
    #[inline]
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s as usize]
    }

    /// Whether the start state accepts (i.e. `ε ∈ L(R)`).
    #[inline]
    pub fn accepts_empty(&self) -> bool {
        self.accepting[0]
    }

    /// All transitions `(s, t)` with `t = δ(s, l)` — the S-PATH arrival probe.
    #[inline]
    pub fn transitions_on(&self, l: Label) -> &[(StateId, StateId)] {
        self.by_label.get(&l).map_or(&[], Vec::as_slice)
    }

    /// Whether any transition out of the start state reads `l`.
    #[inline]
    pub fn starts_with(&self, l: Label) -> bool {
        self.start_labels.contains(&l)
    }

    /// The set of labels with at least one transition.
    pub fn alphabet(&self) -> impl Iterator<Item = Label> + '_ {
        self.by_label.keys().copied()
    }

    /// Extended transition `δ*(s₀, word)`; `None` if rejected en route.
    pub fn run(&self, word: &[Label]) -> Option<StateId> {
        let mut s = self.start();
        for &l in word {
            s = self.delta(s, l)?;
        }
        Some(s)
    }

    /// Whether `word ∈ L(R)`.
    pub fn accepts(&self, word: &[Label]) -> bool {
        self.run(word).is_some_and(|s| self.is_accepting(s))
    }

    /// Outgoing transitions of `s` as `(label, target)` pairs, in label
    /// order. Sorted (not hash) iteration keeps traversal order — and so
    /// S-PATH's emission order — invariant under order-preserving label
    /// renamings, which is what lets a multi-query host's shared namespace
    /// reproduce a dedicated engine's emission log exactly.
    pub fn transitions_from(&self, s: StateId) -> impl Iterator<Item = (Label, StateId)> + '_ {
        self.outgoing[s as usize].iter().copied()
    }

    /// Returns an equivalent DFA whose start state has **no incoming
    /// transitions** (adding one cloned state if needed).
    ///
    /// Product constructions that anchor a tree/relation at `(vertex, s₀)`
    /// need this: with a re-enterable start state (e.g. the one-state DFA
    /// of `a*`), a cycle back to the source vertex would collide with the
    /// empty-path root. Start-separation keeps the root identity unique
    /// while preserving the language.
    pub fn start_separated(&self) -> Dfa {
        let start_has_incoming = self
            .by_label
            .values()
            .flatten()
            .any(|&(_, t)| t == self.start());
        if !start_has_incoming {
            return self.clone();
        }
        let n = self.trans.len() as StateId;
        // Redirect every transition into the old start to a clone `n`.
        let redirect = |t: StateId| if t == 0 { n } else { t };
        let mut trans: Vec<FxHashMap<Label, StateId>> = self
            .trans
            .iter()
            .map(|m| m.iter().map(|(&l, &t)| (l, redirect(t))).collect())
            .collect();
        // The clone behaves exactly like the old start.
        trans.push(trans[0].clone());
        let mut accepting = self.accepting.clone();
        accepting.push(self.accepting[0]);
        Dfa::from_parts(trans, accepting)
    }
}

/// Subset construction over the restricted alphabet. Returns `(trans,
/// accepting)` with the start subset at index `0`. Only reachable subsets
/// are materialised.
fn subset_construction(
    nfa: &Nfa,
    alphabet: &[Label],
) -> (Vec<FxHashMap<Label, StateId>>, Vec<bool>) {
    let mut start: FxHashSet<usize> = FxHashSet::default();
    start.insert(nfa.start());
    nfa.eps_closure(&mut start);

    let key = |set: &FxHashSet<usize>| {
        let mut v: Vec<usize> = set.iter().copied().collect();
        v.sort_unstable();
        v
    };

    let mut ids: FxHashMap<Vec<usize>, StateId> = FxHashMap::default();
    let mut subsets: Vec<FxHashSet<usize>> = Vec::new();
    let mut trans: Vec<FxHashMap<Label, StateId>> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();

    let k0 = key(&start);
    ids.insert(k0, 0);
    accepting.push(start.contains(&nfa.accept()));
    subsets.push(start);
    trans.push(FxHashMap::default());

    let mut work: Vec<StateId> = vec![0];
    while let Some(sid) = work.pop() {
        for &l in alphabet {
            let mut next = nfa.step(&subsets[sid as usize], l);
            if next.is_empty() {
                continue; // partial DFA: no dead state materialised
            }
            nfa.eps_closure(&mut next);
            let k = key(&next);
            let tid = *ids.entry(k).or_insert_with(|| {
                let id = subsets.len() as StateId;
                accepting.push(next.contains(&nfa.accept()));
                subsets.push(next);
                trans.push(FxHashMap::default());
                work.push(id);
                id
            });
            trans[sid as usize].insert(l, tid);
        }
    }
    (trans, accepting)
}

/// Hopcroft's partition-refinement minimization adapted to partial DFAs: an
/// implicit dead state forms its own block, so states are distinguished by
/// *having* a transition on a label as well as by its target block.
fn hopcroft_minimize(
    trans: Vec<FxHashMap<Label, StateId>>,
    accepting: Vec<bool>,
) -> (Vec<FxHashMap<Label, StateId>>, Vec<bool>) {
    let n = trans.len();
    if n <= 1 {
        return (trans, accepting);
    }
    // Sorted, deduplicated alphabet: refinement order (and with it the
    // final block numbering) must depend only on the *relative* order of
    // label ids, never on their hash values — engines hosting the same
    // query in different label namespaces (the multi-query canonicalizer)
    // must number states identically to emit identically.
    let mut alphabet: Vec<Label> = trans
        .iter()
        .flat_map(|m| m.keys().copied())
        .collect::<FxHashSet<Label>>()
        .into_iter()
        .collect();
    alphabet.sort_unstable();

    // Reverse transitions: label → target → sources.
    let mut rev: FxHashMap<(Label, StateId), Vec<StateId>> = FxHashMap::default();
    for (s, m) in trans.iter().enumerate() {
        for (&l, &t) in m {
            rev.entry((l, t)).or_default().push(s as StateId);
        }
    }

    // Initial partition: accepting / non-accepting (non-empty blocks only).
    let mut block_of: Vec<usize> = vec![0; n];
    let mut blocks: Vec<Vec<StateId>> = vec![Vec::new(), Vec::new()];
    for s in 0..n {
        let b = usize::from(accepting[s]);
        block_of[s] = b;
        blocks[b].push(s as StateId);
    }
    blocks.retain(|b| !b.is_empty());
    for (bi, b) in blocks.iter().enumerate() {
        for &s in b {
            block_of[s as usize] = bi;
        }
    }

    // Worklist of (block index, label) splitters.
    let mut work: Vec<(usize, Label)> = Vec::new();
    for bi in 0..blocks.len() {
        for &l in &alphabet {
            work.push((bi, l));
        }
    }

    while let Some((bi, l)) = work.pop() {
        // X = states with an l-transition into block bi.
        let mut x: FxHashSet<StateId> = FxHashSet::default();
        for &t in &blocks[bi] {
            if let Some(sources) = rev.get(&(l, t)) {
                x.extend(sources.iter().copied());
            }
        }
        if x.is_empty() {
            continue;
        }
        // Split every block Y into Y∩X and Y∖X (ascending block index, so
        // new-block numbering is reproducible).
        let mut affected: Vec<usize> = {
            let set: FxHashSet<usize> = x.iter().map(|&s| block_of[s as usize]).collect();
            set.into_iter().collect()
        };
        affected.sort_unstable();
        for y in affected {
            let (inside, outside): (Vec<StateId>, Vec<StateId>) =
                blocks[y].iter().partition(|s| x.contains(s));
            if inside.is_empty() || outside.is_empty() {
                continue;
            }
            // Keep the larger part in place; the smaller becomes a new block.
            let (keep, new_block) = if inside.len() <= outside.len() {
                (outside, inside)
            } else {
                (inside, outside)
            };
            blocks[y] = keep;
            let new_bi = blocks.len();
            for &s in &new_block {
                block_of[s as usize] = new_bi;
            }
            blocks.push(new_block);
            for &a in &alphabet {
                work.push((new_bi, a));
            }
        }
    }

    // Rebuild with the start state's block first.
    let start_block = block_of[0];
    let mut order: Vec<usize> = (0..blocks.len()).collect();
    order.swap(0, start_block);
    let mut new_id: Vec<StateId> = vec![0; blocks.len()];
    for (new, &old) in order.iter().enumerate() {
        new_id[old] = new as StateId;
    }

    let mut new_trans: Vec<FxHashMap<Label, StateId>> = vec![FxHashMap::default(); blocks.len()];
    let mut new_acc = vec![false; blocks.len()];
    for (old_bi, states) in blocks.iter().enumerate() {
        let repr = states[0] as usize;
        let ni = new_id[old_bi] as usize;
        new_acc[ni] = accepting[repr];
        for (&l, &t) in &trans[repr] {
            new_trans[ni].insert(l, new_id[block_of[t as usize]]);
        }
    }
    (new_trans, new_acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Label {
        Label(i)
    }

    fn re_l(i: u32) -> Regex {
        Regex::Label(Label(i))
    }

    #[test]
    fn star_dfa_is_single_state() {
        // a* minimizes to one accepting state with a self-loop.
        let d = Dfa::from_regex(&Regex::star(re_l(0)));
        assert_eq!(d.state_count(), 1);
        assert!(d.accepts_empty());
        assert!(d.accepts(&[l(0), l(0)]));
        assert!(!d.accepts(&[l(1)]));
        assert_eq!(d.delta(0, l(0)), Some(0));
    }

    #[test]
    fn plus_dfa_has_two_states() {
        let d = Dfa::from_regex(&Regex::plus(re_l(0)));
        assert_eq!(d.state_count(), 2);
        assert!(!d.accepts_empty());
        assert!(d.accepts(&[l(0)]));
        assert!(d.accepts(&[l(0), l(0), l(0)]));
    }

    #[test]
    fn q4_cycle_of_three() {
        // (a b c)+ : start, two intermediates, and an accepting state that
        // loops back on `a` (it cannot merge with the non-accepting start).
        let re = Regex::plus(Regex::concat(vec![re_l(0), re_l(1), re_l(2)]));
        let d = Dfa::from_regex(&re);
        assert_eq!(d.state_count(), 4);
        assert!(d.accepts(&[l(0), l(1), l(2)]));
        assert!(d.accepts(&[l(0), l(1), l(2), l(0), l(1), l(2)]));
        assert!(!d.accepts(&[l(0), l(1)]));
    }

    #[test]
    fn transitions_on_reverse_index() {
        let re = Regex::plus(Regex::concat(vec![re_l(0), re_l(1), re_l(2)]));
        let d = Dfa::from_regex(&re);
        // `a` is read from both the start and the accepting state.
        assert_eq!(d.transitions_on(l(0)).len(), 2);
        assert_eq!(d.transitions_on(l(1)).len(), 1);
        assert_eq!(d.transitions_on(l(2)).len(), 1);
        assert!(d.transitions_on(l(9)).is_empty());
        // Start-label check.
        assert!(d.starts_with(l(0)));
        assert!(!d.starts_with(l(1)));
    }

    #[test]
    fn distinguishes_by_missing_transition() {
        // L = a | a b. After 'a' the state accepts but also continues on b;
        // partial-DFA minimization must not merge it with the final state.
        let re = Regex::alt(vec![re_l(0), Regex::concat(vec![re_l(0), re_l(1)])]);
        let d = Dfa::from_regex(&re);
        assert!(d.accepts(&[l(0)]));
        assert!(d.accepts(&[l(0), l(1)]));
        assert!(!d.accepts(&[l(0), l(1), l(1)]));
    }

    #[test]
    fn empty_language() {
        let d = Dfa::from_regex(&Regex::Empty);
        assert!(!d.accepts(&[]));
        assert!(!d.accepts(&[l(0)]));
    }

    #[test]
    fn run_returns_intermediate_states() {
        let re = Regex::concat(vec![re_l(0), re_l(1)]);
        let d = Dfa::from_regex(&re);
        let s1 = d.run(&[l(0)]).unwrap();
        assert!(!d.is_accepting(s1));
        let s2 = d.run(&[l(0), l(1)]).unwrap();
        assert!(d.is_accepting(s2));
        assert!(d.run(&[l(1)]).is_none());
    }

    #[test]
    fn start_separation_preserves_language() {
        // a*: one accepting state with a self-loop; separation adds a clone.
        let d = Dfa::from_regex(&Regex::star(re_l(0)));
        let s = d.start_separated();
        assert_eq!(s.state_count(), 2);
        // No transitions back into the start.
        assert!(s
            .alphabet()
            .collect::<Vec<_>>()
            .iter()
            .all(|&a| s.transitions_on(a).iter().all(|&(_, t)| t != s.start())));
        for len in 0..5usize {
            let w = vec![l(0); len];
            assert_eq!(s.accepts(&w), d.accepts(&w), "word length {len}");
        }
        assert!(!s.accepts(&[l(1)]));
    }

    #[test]
    fn start_separation_is_identity_when_unneeded() {
        // a·b has no transitions into the start state.
        let d = Dfa::from_regex(&Regex::concat(vec![re_l(0), re_l(1)]));
        let s = d.start_separated();
        assert_eq!(s.state_count(), d.state_count());
    }

    #[test]
    fn start_separation_of_plus_cycle() {
        // (a b c)+ loops back through the start's successor, not the start
        // itself — but `a (b a)*`-style regexes do re-enter. Check one.
        let mut it = sgq_types::LabelInterner::new();
        let re = crate::parser::parse("a (b a)*", &mut it).unwrap();
        let d = Dfa::from_regex(&re);
        let s = d.start_separated();
        let a = it.get("a").unwrap();
        let b = it.get("b").unwrap();
        for w in [
            vec![a],
            vec![a, b, a],
            vec![a, b, a, b, a],
            vec![a, b],
            vec![b],
        ] {
            assert_eq!(s.accepts(&w), d.accepts(&w), "{w:?}");
        }
    }

    #[test]
    fn minimization_agrees_with_nfa_on_words() {
        // a (b|c)* a? — compare DFA vs NFA on all words up to length 4.
        let re = Regex::concat(vec![
            re_l(0),
            Regex::star(Regex::alt(vec![re_l(1), re_l(2)])),
            Regex::optional(re_l(0)),
        ]);
        let d = Dfa::from_regex(&re);
        let n = Nfa::from_regex(&re);
        let sigma = [l(0), l(1), l(2)];
        let mut words: Vec<Vec<Label>> = vec![vec![]];
        for _ in 0..4 {
            let mut next = Vec::new();
            for w in &words {
                for &a in &sigma {
                    let mut w2 = w.clone();
                    w2.push(a);
                    next.push(w2);
                }
            }
            words.extend(next.clone());
            words.dedup();
        }
        for w in &words {
            assert_eq!(d.accepts(w), n.accepts(w), "disagree on {w:?}");
        }
    }
}
