//! Thompson construction: [`Regex`] → ε-NFA, plus direct word simulation.
//!
//! The NFA is the intermediate representation for DFA construction and the
//! independent oracle in property tests (`Dfa::accepts == Nfa::accepts`).

use crate::regex::Regex;
use sgq_types::{FxHashSet, Label};

/// An NFA state index.
pub type NfaStateId = usize;

#[derive(Debug, Clone, Default)]
struct NfaState {
    /// Labelled transitions `(label, target)`.
    trans: Vec<(Label, NfaStateId)>,
    /// ε-transitions.
    eps: Vec<NfaStateId>,
}

/// An ε-NFA with a single start and a single accept state (Thompson form).
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<NfaState>,
    start: NfaStateId,
    accept: NfaStateId,
}

impl Nfa {
    /// Thompson construction from a regex.
    pub fn from_regex(re: &Regex) -> Nfa {
        let mut nfa = Nfa {
            states: Vec::new(),
            start: 0,
            accept: 0,
        };
        let (s, a) = nfa.build(re);
        nfa.start = s;
        nfa.accept = a;
        nfa
    }

    fn new_state(&mut self) -> NfaStateId {
        self.states.push(NfaState::default());
        self.states.len() - 1
    }

    /// Builds the fragment for `re`, returning `(start, accept)`.
    fn build(&mut self, re: &Regex) -> (NfaStateId, NfaStateId) {
        match re {
            Regex::Empty => {
                let s = self.new_state();
                let a = self.new_state();
                (s, a) // no connection: rejects everything
            }
            Regex::Epsilon => {
                let s = self.new_state();
                let a = self.new_state();
                self.states[s].eps.push(a);
                (s, a)
            }
            Regex::Label(l) => {
                let s = self.new_state();
                let a = self.new_state();
                self.states[s].trans.push((*l, a));
                (s, a)
            }
            Regex::Concat(parts) => {
                let mut parts = parts.iter();
                let (s, mut prev_a) = self.build(parts.next().expect("concat is non-empty"));
                for p in parts {
                    let (fs, fa) = self.build(p);
                    self.states[prev_a].eps.push(fs);
                    prev_a = fa;
                }
                (s, prev_a)
            }
            Regex::Alt(parts) => {
                let s = self.new_state();
                let a = self.new_state();
                for p in parts {
                    let (fs, fa) = self.build(p);
                    self.states[s].eps.push(fs);
                    self.states[fa].eps.push(a);
                }
                (s, a)
            }
            Regex::Star(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (fs, fa) = self.build(inner);
                self.states[s].eps.push(fs);
                self.states[s].eps.push(a);
                self.states[fa].eps.push(fs);
                self.states[fa].eps.push(a);
                (s, a)
            }
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The start state.
    pub fn start(&self) -> NfaStateId {
        self.start
    }

    /// The accept state.
    pub fn accept(&self) -> NfaStateId {
        self.accept
    }

    /// ε-closure of a state set, in place.
    pub fn eps_closure(&self, set: &mut FxHashSet<NfaStateId>) {
        let mut stack: Vec<NfaStateId> = set.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &t in &self.states[s].eps {
                if set.insert(t) {
                    stack.push(t);
                }
            }
        }
    }

    /// States reachable from `set` by consuming `label` (before closure).
    pub fn step(&self, set: &FxHashSet<NfaStateId>, label: Label) -> FxHashSet<NfaStateId> {
        let mut out = FxHashSet::default();
        for &s in set {
            for &(l, t) in &self.states[s].trans {
                if l == label {
                    out.insert(t);
                }
            }
        }
        out
    }

    /// Direct subset simulation: whether `word ∈ L(R)`.
    pub fn accepts(&self, word: &[Label]) -> bool {
        let mut cur: FxHashSet<NfaStateId> = FxHashSet::default();
        cur.insert(self.start);
        self.eps_closure(&mut cur);
        for &l in word {
            let mut next = self.step(&cur, l);
            if next.is_empty() {
                return false;
            }
            self.eps_closure(&mut next);
            cur = next;
        }
        cur.contains(&self.accept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Label {
        Label(i)
    }

    fn re_l(i: u32) -> Regex {
        Regex::Label(Label(i))
    }

    #[test]
    fn label_accepts_exactly_itself() {
        let n = Nfa::from_regex(&re_l(0));
        assert!(n.accepts(&[l(0)]));
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[l(1)]));
        assert!(!n.accepts(&[l(0), l(0)]));
    }

    #[test]
    fn empty_rejects_everything() {
        let n = Nfa::from_regex(&Regex::Empty);
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[l(0)]));
    }

    #[test]
    fn epsilon_accepts_only_empty_word() {
        let n = Nfa::from_regex(&Regex::Epsilon);
        assert!(n.accepts(&[]));
        assert!(!n.accepts(&[l(0)]));
    }

    #[test]
    fn star_accepts_repetitions() {
        let n = Nfa::from_regex(&Regex::star(re_l(0)));
        assert!(n.accepts(&[]));
        assert!(n.accepts(&[l(0)]));
        assert!(n.accepts(&[l(0); 5]));
        assert!(!n.accepts(&[l(0), l(1)]));
    }

    #[test]
    fn q4_shape() {
        // (a b c)+
        let re = Regex::plus(Regex::concat(vec![re_l(0), re_l(1), re_l(2)]));
        let n = Nfa::from_regex(&re);
        assert!(!n.accepts(&[]));
        assert!(n.accepts(&[l(0), l(1), l(2)]));
        assert!(n.accepts(&[l(0), l(1), l(2), l(0), l(1), l(2)]));
        assert!(!n.accepts(&[l(0), l(1)]));
        assert!(!n.accepts(&[l(0), l(1), l(2), l(0)]));
    }

    #[test]
    fn alternation() {
        let re = Regex::alt(vec![re_l(0), re_l(1)]);
        let n = Nfa::from_regex(&re);
        assert!(n.accepts(&[l(0)]));
        assert!(n.accepts(&[l(1)]));
        assert!(!n.accepts(&[l(2)]));
    }

    #[test]
    fn q3_shape() {
        // a b* c*
        let re = Regex::concat(vec![re_l(0), Regex::star(re_l(1)), Regex::star(re_l(2))]);
        let n = Nfa::from_regex(&re);
        assert!(n.accepts(&[l(0)]));
        assert!(n.accepts(&[l(0), l(1), l(1)]));
        assert!(n.accepts(&[l(0), l(2)]));
        assert!(n.accepts(&[l(0), l(1), l(2), l(2)]));
        assert!(!n.accepts(&[l(0), l(2), l(1)]));
    }
}
