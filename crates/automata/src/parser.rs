//! Textual regular-expression syntax.
//!
//! Grammar (whitespace-insensitive except as concatenation):
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := postfix (('.' | ws)? postfix)*
//! postfix:= atom ('*' | '+' | '?')*
//! atom   := IDENT | '(' alt ')' | 'ε'
//! IDENT  := [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! Label names resolve through the shared [`LabelInterner`]; classification
//! as EDB/IDB happens at program validation, not here.

use crate::regex::Regex;
use sgq_types::LabelInterner;
use std::fmt;

/// A regex parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    labels: &'a mut LabelInterner,
}

/// Parses `input` into a [`Regex`].
pub fn parse(input: &str, labels: &mut LabelInterner) -> Result<Regex, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        labels,
    };
    let re = p.alt()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(re)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn alt(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.concat()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'|') {
                self.pos += 1;
                parts.push(self.concat()?);
            } else {
                break;
            }
        }
        Ok(Regex::alt(parts))
    }

    fn concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'.') if !parts.is_empty() => {
                    self.pos += 1;
                    continue;
                }
                Some(c) if c == b'(' || is_ident_start(c) || is_epsilon_start(self.rest()) => {
                    parts.push(self.postfix()?);
                }
                _ => break,
            }
        }
        if parts.is_empty() {
            return Err(self.err("expected a label or '('"));
        }
        Ok(Regex::concat(parts))
    }

    fn rest(&self) -> &[u8] {
        &self.input[self.pos..]
    }

    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut re = self.atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    re = Regex::star(re);
                }
                Some(b'+') => {
                    self.pos += 1;
                    re = Regex::plus(re);
                }
                Some(b'?') => {
                    self.pos += 1;
                    re = Regex::optional(re);
                }
                _ => break,
            }
        }
        Ok(re)
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let re = self.alt()?;
                self.skip_ws();
                if self.peek() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                self.pos += 1;
                Ok(re)
            }
            Some(c) if is_ident_start(c) => {
                let start = self.pos;
                while self.peek().is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
                Ok(Regex::Label(self.labels.intern(name)))
            }
            _ if is_epsilon_start(self.rest()) => {
                self.pos += "ε".len();
                Ok(Regex::Epsilon)
            }
            _ => Err(self.err("expected a label, 'ε' or '('")),
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn is_epsilon_start(rest: &[u8]) -> bool {
    rest.starts_with("ε".as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_types::Label;

    fn setup() -> LabelInterner {
        let mut it = LabelInterner::new();
        it.intern("a"); // Label(0)
        it.intern("b"); // Label(1)
        it.intern("c"); // Label(2)
        it
    }

    fn l(i: u32) -> Regex {
        Regex::Label(Label(i))
    }

    #[test]
    fn single_label() {
        let mut it = setup();
        assert_eq!(parse("a", &mut it).unwrap(), l(0));
    }

    #[test]
    fn q1_star() {
        let mut it = setup();
        assert_eq!(parse("a*", &mut it).unwrap(), Regex::star(l(0)));
    }

    #[test]
    fn q2_concat_star() {
        // Q2: a ◦ b*
        let mut it = setup();
        let expect = Regex::concat(vec![l(0), Regex::star(l(1))]);
        assert_eq!(parse("a b*", &mut it).unwrap(), expect);
        assert_eq!(parse("a.b*", &mut it).unwrap(), expect);
        assert_eq!(parse("a . b *", &mut it).unwrap(), expect);
    }

    #[test]
    fn q3_double_star() {
        // Q3: a ◦ b* ◦ c*
        let mut it = setup();
        let expect = Regex::concat(vec![l(0), Regex::star(l(1)), Regex::star(l(2))]);
        assert_eq!(parse("a b* c*", &mut it).unwrap(), expect);
    }

    #[test]
    fn q4_grouped_plus() {
        // Q4: (a ◦ b ◦ c)+
        let mut it = setup();
        let abc = Regex::concat(vec![l(0), l(1), l(2)]);
        assert_eq!(parse("(a b c)+", &mut it).unwrap(), Regex::plus(abc));
    }

    #[test]
    fn alternation_precedence() {
        // a b | c == (a b) | c
        let mut it = setup();
        let expect = Regex::alt(vec![Regex::concat(vec![l(0), l(1)]), l(2)]);
        assert_eq!(parse("a b | c", &mut it).unwrap(), expect);
    }

    #[test]
    fn optional_and_nested_groups() {
        let mut it = setup();
        let expect = Regex::concat(vec![
            Regex::optional(l(0)),
            Regex::star(Regex::alt(vec![l(1), l(2)])),
        ]);
        assert_eq!(parse("a? (b|c)*", &mut it).unwrap(), expect);
    }

    #[test]
    fn epsilon_literal() {
        let mut it = setup();
        assert_eq!(
            parse("ε|a", &mut it).unwrap(),
            Regex::alt(vec![Regex::Epsilon, l(0)])
        );
    }

    #[test]
    fn new_labels_are_interned() {
        let mut it = setup();
        parse("knows+", &mut it).unwrap();
        assert!(it.get("knows").is_some());
    }

    #[test]
    fn errors_have_positions() {
        let mut it = setup();
        let e = parse("a |", &mut it).unwrap_err();
        assert_eq!(e.at, 3);
        assert!(parse("(a", &mut it).is_err());
        assert!(parse("a)", &mut it).is_err());
        assert!(parse("", &mut it).is_err());
        assert!(parse("*a", &mut it).is_err());
    }
}
