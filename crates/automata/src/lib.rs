//! # sgq-automata — regular expressions over edge-label alphabets
//!
//! The PATH operator (Def. 20) constrains path label sequences with a
//! regular expression `R` over the label alphabet `Σ` and evaluates it with
//! a DFA (`ConstructDFA` in Algorithm S-PATH). This crate is that substrate,
//! built from scratch:
//!
//! * [`Regex`] — the expression AST (labels, concatenation, alternation,
//!   Kleene star/plus, optional), plus a text [`parse`](Regex::parse) front
//!   end (`a ((b|c)* d)+` style syntax with `.` or whitespace concatenation).
//! * [`Nfa`] — Thompson construction with ε-transitions and direct word
//!   simulation (used as the correctness oracle for the DFA).
//! * [`Dfa`] — subset construction followed by Hopcroft minimization, with
//!   the reverse index `transitions_on(label)` that S-PATH probes on tuple
//!   arrival ("for each s, t ∈ S where t = δ(s, l)").

#![warn(missing_docs)]

pub mod dfa;
pub mod nfa;
pub mod parser;
pub mod regex;

pub use dfa::{Dfa, StateId};
pub use nfa::Nfa;
pub use regex::Regex;
