//! The regular-expression AST over interned edge labels.

use sgq_types::{Label, LabelInterner};
use std::fmt;

/// A regular expression over the label alphabet `Σ` (Def. 20).
///
/// Constructors normalise trivially (flatten nested concat/alt, absorb
/// `Empty`/`Epsilon` identities) so structurally different builds of the
/// same expression compare equal more often; full semantic equality is the
/// DFA's job.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The empty word `ε`.
    Epsilon,
    /// A single label `l ∈ Σ`.
    Label(Label),
    /// Concatenation `R₁ · R₂ · …` (at least two factors).
    Concat(Vec<Regex>),
    /// Alternation `R₁ | R₂ | …` (at least two branches).
    Alt(Vec<Regex>),
    /// Kleene star `R*`.
    Star(Box<Regex>),
}

impl Regex {
    /// A single-label atom.
    pub fn label(l: Label) -> Regex {
        Regex::Label(l)
    }

    /// Concatenation, flattening nested concats and applying
    /// `ε · R = R` and `∅ · R = ∅`.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => return Regex::Empty,
                Regex::Epsilon => {}
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().unwrap(),
            _ => Regex::Concat(out),
        }
    }

    /// Alternation, flattening nested alts, applying `∅ | R = R` and
    /// deduplicating identical branches.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => {
                    for i in inner {
                        if !out.contains(&i) {
                            out.push(i);
                        }
                    }
                }
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().unwrap(),
            _ => Regex::Alt(out),
        }
    }

    /// Kleene star, applying `∅* = ε* = ε` and `(R*)* = R*`.
    pub fn star(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            other => Regex::Star(Box::new(other)),
        }
    }

    /// Kleene plus `R+ = R · R*`.
    pub fn plus(r: Regex) -> Regex {
        Regex::concat(vec![r.clone(), Regex::star(r)])
    }

    /// Optional `R? = R | ε`.
    pub fn optional(r: Regex) -> Regex {
        match r {
            Regex::Empty => Regex::Epsilon,
            Regex::Epsilon => Regex::Epsilon,
            other => Regex::alt(vec![other, Regex::Epsilon]),
        }
    }

    /// The ε-free projection of the language: a regex for `L(R) \ {ε}`.
    ///
    /// PATH results carry validity intervals derived from their
    /// constituent edges, so the empty path is never reported and a
    /// top-level `R*` coincides with `R+` (the empty-word note in the
    /// query oracle). The planner normalises PATH regexes through this,
    /// so `l*` and `l+` compile to the *same expression* — and downstream
    /// to the same shared operator in a multi-query host.
    pub fn non_empty(&self) -> Regex {
        if !self.nullable() {
            return self.clone();
        }
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Empty,
            Regex::Label(_) => unreachable!("label atoms are never nullable"),
            // Non-empty words of `R*` concatenate ≥ 1 non-empty words of
            // `R`: `(R \ ε) · (R \ ε)*` — the canonical `+` shape.
            Regex::Star(p) => {
                let core = p.non_empty();
                Regex::concat(vec![core.clone(), Regex::star(core)])
            }
            Regex::Alt(ps) => Regex::alt(ps.iter().map(Regex::non_empty).collect()),
            // A nullable concat has every factor nullable; a non-empty
            // word picks the first factor contributing a non-empty piece:
            // `∪ᵢ (pᵢ \ ε) · pᵢ₊₁ · … · pₙ`.
            Regex::Concat(ps) => Regex::alt(
                (0..ps.len())
                    .map(|i| {
                        let mut parts = vec![ps[i].non_empty()];
                        parts.extend(ps[i + 1..].iter().cloned());
                        Regex::concat(parts)
                    })
                    .collect(),
            ),
        }
    }

    /// Whether `ε ∈ L(R)` (nullable).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Label(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(ps) => ps.iter().all(Regex::nullable),
            Regex::Alt(ps) => ps.iter().any(Regex::nullable),
        }
    }

    /// Rewrites every label atom through `f`, preserving structure. Used
    /// to re-home a regex into another label namespace (e.g. the
    /// multi-query host's canonical namespace).
    pub fn map_labels(&self, f: &mut impl FnMut(Label) -> Label) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Label(l) => Regex::Label(f(*l)),
            Regex::Concat(ps) => Regex::Concat(ps.iter().map(|p| p.map_labels(f)).collect()),
            Regex::Alt(ps) => Regex::Alt(ps.iter().map(|p| p.map_labels(f)).collect()),
            Regex::Star(p) => Regex::Star(Box::new(p.map_labels(f))),
        }
    }

    /// The set of labels appearing in the expression, in first-occurrence
    /// order.
    pub fn alphabet(&self) -> Vec<Label> {
        let mut out = Vec::new();
        self.collect_alphabet(&mut out);
        out
    }

    fn collect_alphabet(&self, out: &mut Vec<Label>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Label(l) => {
                if !out.contains(l) {
                    out.push(*l);
                }
            }
            Regex::Concat(ps) | Regex::Alt(ps) => {
                for p in ps {
                    p.collect_alphabet(out);
                }
            }
            Regex::Star(p) => p.collect_alphabet(out),
        }
    }

    /// Parses the textual syntax; see [`crate::parser`].
    pub fn parse(
        input: &str,
        labels: &mut LabelInterner,
    ) -> Result<Regex, crate::parser::ParseError> {
        crate::parser::parse(input, labels)
    }

    /// Renders with label names resolved through `labels`.
    pub fn display<'a>(&'a self, labels: &'a LabelInterner) -> impl fmt::Display + 'a {
        DisplayRegex { re: self, labels }
    }

    fn fmt_with(&self, f: &mut fmt::Formatter<'_>, labels: Option<&LabelInterner>) -> fmt::Result {
        // Precedence: alt < concat < star; parenthesise children as needed.
        fn prec(r: &Regex) -> u8 {
            match r {
                Regex::Alt(_) => 0,
                Regex::Concat(_) => 1,
                Regex::Star(_) => 2,
                _ => 3, // atoms never need parentheses
            }
        }
        fn go(
            r: &Regex,
            f: &mut fmt::Formatter<'_>,
            labels: Option<&LabelInterner>,
            min_prec: u8,
        ) -> fmt::Result {
            let wrap = prec(r) < min_prec;
            if wrap {
                write!(f, "(")?;
            }
            match r {
                Regex::Empty => write!(f, "∅")?,
                Regex::Epsilon => write!(f, "ε")?,
                Regex::Label(l) => match labels {
                    Some(it) => write!(f, "{}", it.name(*l))?,
                    None => write!(f, "{l:?}")?,
                },
                Regex::Concat(ps) => {
                    for (i, p) in ps.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        go(p, f, labels, 2)?;
                    }
                }
                Regex::Alt(ps) => {
                    for (i, p) in ps.iter().enumerate() {
                        if i > 0 {
                            write!(f, "|")?;
                        }
                        go(p, f, labels, 1)?;
                    }
                }
                Regex::Star(p) => {
                    go(p, f, labels, 3)?;
                    write!(f, "*")?;
                }
            }
            if wrap {
                write!(f, ")")?;
            }
            Ok(())
        }
        go(self, f, labels, 0)
    }
}

struct DisplayRegex<'a> {
    re: &'a Regex,
    labels: &'a LabelInterner,
}

impl fmt::Display for DisplayRegex<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.re.fmt_with(f, Some(self.labels))
    }
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with(f, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Regex {
        Regex::Label(Label(i))
    }

    #[test]
    fn concat_normalises() {
        assert_eq!(Regex::concat(vec![]), Regex::Epsilon);
        assert_eq!(Regex::concat(vec![l(0)]), l(0));
        assert_eq!(
            Regex::concat(vec![l(0), Regex::Epsilon, l(1)]),
            Regex::Concat(vec![l(0), l(1)])
        );
        assert_eq!(Regex::concat(vec![l(0), Regex::Empty]), Regex::Empty);
        // Flattening.
        assert_eq!(
            Regex::concat(vec![Regex::concat(vec![l(0), l(1)]), l(2)]),
            Regex::Concat(vec![l(0), l(1), l(2)])
        );
    }

    #[test]
    fn alt_normalises() {
        assert_eq!(Regex::alt(vec![]), Regex::Empty);
        assert_eq!(Regex::alt(vec![l(0), Regex::Empty]), l(0));
        assert_eq!(Regex::alt(vec![l(0), l(0)]), l(0));
        assert_eq!(
            Regex::alt(vec![Regex::alt(vec![l(0), l(1)]), l(1), l(2)]),
            Regex::Alt(vec![l(0), l(1), l(2)])
        );
    }

    #[test]
    fn star_normalises() {
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::star(l(0))), Regex::star(l(0)));
    }

    #[test]
    fn plus_expands_to_concat_star() {
        let p = Regex::plus(l(0));
        assert_eq!(p, Regex::Concat(vec![l(0), Regex::Star(Box::new(l(0)))]));
        assert!(!p.nullable());
    }

    #[test]
    fn optional_is_nullable() {
        assert!(Regex::optional(l(0)).nullable());
    }

    #[test]
    fn nullable_cases() {
        assert!(Regex::Epsilon.nullable());
        assert!(!l(0).nullable());
        assert!(Regex::star(l(0)).nullable());
        assert!(!Regex::concat(vec![Regex::star(l(0)), l(1)]).nullable());
        assert!(Regex::concat(vec![Regex::star(l(0)), Regex::star(l(1))]).nullable());
    }

    #[test]
    fn non_empty_strips_epsilon_exactly() {
        // `l*` → `l l*` (the `+` shape).
        assert_eq!(Regex::star(l(0)).non_empty(), Regex::plus(l(0)));
        // ε-free regexes are unchanged.
        let r = Regex::concat(vec![l(0), Regex::star(l(1))]);
        assert_eq!(r.non_empty(), r);
        // `a | ε` → `a`; `ε` → ∅.
        assert_eq!(Regex::optional(l(0)).non_empty(), l(0));
        assert_eq!(Regex::Epsilon.non_empty(), Regex::Empty);
        // Nullable concat `a* b*` → `a a* b* | b b*`.
        let ab = Regex::concat(vec![Regex::star(l(0)), Regex::star(l(1))]);
        let expect = Regex::alt(vec![
            Regex::concat(vec![Regex::plus(l(0)), Regex::star(l(1))]),
            Regex::plus(l(1)),
        ]);
        assert_eq!(ab.non_empty(), expect);
        assert!(!ab.non_empty().nullable());
        // `(a | ε)*` → `a a*` (inner ε stripped before the closure).
        assert_eq!(
            Regex::star(Regex::optional(l(0))).non_empty(),
            Regex::plus(l(0))
        );
    }

    #[test]
    fn alphabet_in_order() {
        let r = Regex::concat(vec![l(2), Regex::alt(vec![l(0), l(2)]), l(1)]);
        assert_eq!(r.alphabet(), vec![Label(2), Label(0), Label(1)]);
    }
}
