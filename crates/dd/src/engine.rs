//! The epoch-batched incremental evaluator — the Differential-Dataflow
//! baseline of §7.2.2.
//!
//! Like DD, it (i) processes input in **batches per logical timestamp**
//! (one epoch per window slide; all sgts within a slide share the epoch —
//! §7.3's explanation of Figure 11), (ii) maintains every relation as an
//! arranged, counted collection, (iii) evaluates non-recursive rules with
//! counting delta-joins, and (iv) evaluates recursion (`iterate`) with
//! semi-naive expansion plus DRed for retractions. Window movement is
//! translated to batched insertions (new arrivals) and retractions
//! (expired tuples), exactly how one drives DD over sliding windows.
//!
//! Unlike the SGA engine, it has only one plan — the canonical
//! loop-caching one (the paper's footnote 9) — and it cannot exploit
//! validity intervals: every expiry is a retraction with DRed-style
//! re-derivation cost.

use crate::collection::{Rel, SetDelta};
use crate::tc::{EdgeDelta, TcState};
use sgq_core::metrics::RunStats;
use sgq_query::{BodyAtom, RqProgram, Rule, SgqQuery, WindowSpec};
use sgq_types::{FxHashMap, FxHashSet, Label, Sge, Timestamp, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// An sge held in the window, ordered by expiry for min-heap extraction
/// (streams may be windowed per label, Figure 7, so expiries are not
/// arrival-ordered).
#[derive(PartialEq, Eq)]
struct ByExpiry(Timestamp, Sge);

impl Ord for ByExpiry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0).then_with(|| {
            (self.1.src, self.1.trg, self.1.label, self.1.t).cmp(&(
                other.1.src,
                other.1.trg,
                other.1.label,
                other.1.t,
            ))
        })
    }
}

impl PartialOrd for ByExpiry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One body atom compiled for delta-join evaluation.
enum CompiledAtom {
    /// A relation atom reading `label`. `pred_gated` notes attribute
    /// predicates on the atom: the DD baseline consumes property-less
    /// input streams (as in the paper's experiments), over which such
    /// predicates are vacuously false — the atom matches nothing. Use the
    /// SGA engine's `process_with_props` for property workloads.
    Rel {
        label: Label,
        src: String,
        trg: String,
        pred_gated: bool,
    },
    /// A path atom evaluated by TC state `idx`.
    Tc {
        idx: usize,
        src: String,
        trg: String,
    },
}

struct CompiledRule {
    head: Label,
    head_src: String,
    head_trg: String,
    atoms: Vec<CompiledAtom>,
}

/// Derivation-counted head relation.
#[derive(Default)]
struct HeadState {
    counts: FxHashMap<(VertexId, VertexId), i64>,
}

impl HeadState {
    fn apply(
        &mut self,
        pair: (VertexId, VertexId),
        delta: i64,
        out: &mut Vec<(VertexId, VertexId, SetDelta)>,
    ) {
        if delta == 0 {
            return;
        }
        let c = self.counts.entry(pair).or_insert(0);
        let before = *c;
        *c += delta;
        debug_assert!(*c >= 0, "negative derivation count");
        if before == 0 && *c > 0 {
            out.push((pair.0, pair.1, SetDelta::Added));
        } else if before > 0 && *c == 0 {
            out.push((pair.0, pair.1, SetDelta::Removed));
        }
        if *c == 0 {
            self.counts.remove(&pair);
        }
    }
}

/// The DD-style engine for one SGQ.
pub struct DdEngine {
    window: WindowSpec,
    /// Per-label window overrides (Figure 7's individually-windowed
    /// streams).
    label_windows: Vec<(Label, WindowSpec)>,
    answer: Label,
    /// Arranged set-level relations, per label (EDB and IDB).
    rels: FxHashMap<Label, Rel>,
    /// TC states for path atoms; shared for aliased atoms.
    tcs: Vec<TcState>,
    /// IDB labels in topological order with their compiled rules.
    strata: Vec<(Label, Vec<CompiledRule>)>,
    /// TC atoms owned by alias labels (evaluated as their own stratum).
    alias_tcs: FxHashMap<Label, usize>,
    /// Derivation counts per rule-head label.
    head_states: FxHashMap<Label, HeadState>,
    /// Buffered arrivals of the open epoch.
    pending: Vec<Sge>,
    /// Live window content as a min-heap on expiry (for retractions).
    window_edges: BinaryHeap<Reverse<ByExpiry>>,
    /// Current epoch boundary (exclusive lower edge of the open epoch).
    next_boundary: Option<Timestamp>,
    /// Result log: (epoch boundary, pair, delta) for snapshot queries.
    result_log: Vec<(Timestamp, VertexId, VertexId, SetDelta)>,
    results_emitted: u64,
    deletions_emitted: u64,
}

impl DdEngine {
    /// Compiles the query into the epoch-batched dataflow.
    pub fn new(query: &SgqQuery) -> Self {
        let program = &query.program;
        let mut tcs: Vec<TcState> = Vec::new();
        let mut alias_tcs: FxHashMap<Label, usize> = FxHashMap::default();

        // Allocate TC states: one per alias, one per anonymous path atom.
        let mut rule_atom_tc: FxHashMap<(usize, usize), usize> = FxHashMap::default();
        for (ri, rule) in program.rules().iter().enumerate() {
            for (ai, atom) in rule.body.iter().enumerate() {
                if let BodyAtom::Path { regex, alias, .. } = atom {
                    let idx = match alias {
                        Some(al) => *alias_tcs.entry(*al).or_insert_with(|| {
                            tcs.push(TcState::new(regex));
                            tcs.len() - 1
                        }),
                        None => {
                            tcs.push(TcState::new(regex));
                            tcs.len() - 1
                        }
                    };
                    rule_atom_tc.insert((ri, ai), idx);
                }
            }
        }

        let compile_rule = |ri: usize, rule: &Rule| -> CompiledRule {
            CompiledRule {
                head: rule.head.label,
                head_src: rule.head.src.clone(),
                head_trg: rule.head.trg.clone(),
                atoms: rule
                    .body
                    .iter()
                    .enumerate()
                    .map(|(ai, atom)| match atom {
                        BodyAtom::Rel {
                            label,
                            src,
                            trg,
                            preds,
                        } => CompiledAtom::Rel {
                            label: *label,
                            src: src.clone(),
                            trg: trg.clone(),
                            pred_gated: !preds.is_empty(),
                        },
                        BodyAtom::Path { src, trg, .. } => CompiledAtom::Tc {
                            idx: rule_atom_tc[&(ri, ai)],
                            src: src.clone(),
                            trg: trg.clone(),
                        },
                    })
                    .collect(),
            }
        };

        let mut strata = Vec::new();
        for &l in program.idb_topological() {
            let rules: Vec<CompiledRule> = program
                .rules()
                .iter()
                .enumerate()
                .filter(|(_, r)| r.head.label == l)
                .map(|(ri, r)| compile_rule(ri, r))
                .collect();
            strata.push((l, rules));
        }

        let mut rels: FxHashMap<Label, Rel> = FxHashMap::default();
        for &l in program.edb_labels() {
            rels.insert(l, Rel::new());
        }
        for &(l, _) in &strata {
            rels.insert(l, Rel::new());
        }
        let head_states = strata
            .iter()
            .map(|&(l, _)| (l, HeadState::default()))
            .collect();

        DdEngine {
            window: query.window,
            label_windows: query.label_windows().to_vec(),
            answer: program.answer(),
            rels,
            tcs,
            strata,
            alias_tcs,
            head_states,
            pending: Vec::new(),
            window_edges: BinaryHeap::new(),
            next_boundary: None,
            result_log: Vec::new(),
            results_emitted: 0,
            deletions_emitted: 0,
        }
    }

    /// Builds from a program + window directly.
    pub fn from_program(program: RqProgram, window: WindowSpec) -> Self {
        Self::new(&SgqQuery::new(program, window))
    }

    /// The window governing `label` (override or default).
    fn window_for(&self, label: Label) -> WindowSpec {
        self.label_windows
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, w)| *w)
            .unwrap_or(self.window)
    }

    /// Feeds one sge. An epoch with boundary `b` closes when a tuple with
    /// `ts > b` arrives (a tuple at exactly `b` still belongs to epoch `b`:
    /// its validity interval contains `b`).
    pub fn process(&mut self, sge: Sge) {
        match self.next_boundary {
            None => {
                self.next_boundary = Some((sge.t / self.window.slide + 1) * self.window.slide);
            }
            Some(mut b) => {
                while sge.t > b {
                    self.close_epoch(b);
                    b += self.window.slide;
                }
                self.next_boundary = Some(b);
            }
        }
        self.pending.push(sge);
    }

    /// Forces all epochs with boundary ≤ `t` to close (end-of-stream flush).
    pub fn flush_to(&mut self, t: Timestamp) {
        let Some(mut b) = self.next_boundary else {
            return;
        };
        while b <= t {
            self.close_epoch(b);
            b += self.window.slide;
        }
        self.next_boundary = Some(b);
    }

    /// Closes the epoch ending at boundary `b`: batches arrivals with
    /// `ts ≤ b`, retracts expirations with `exp ≤ b`, and propagates
    /// deltas through the dataflow.
    fn close_epoch(&mut self, b: Timestamp) {
        // Multiplicity deltas per EDB label.
        let mut mult: FxHashMap<Label, FxHashMap<(VertexId, VertexId), i64>> = FxHashMap::default();
        let mut still_pending = Vec::new();
        for sge in std::mem::take(&mut self.pending) {
            if sge.t > b {
                still_pending.push(sge);
                continue;
            }
            let exp = self.window_for(sge.label).interval_for(sge.t).exp;
            if self.rels.contains_key(&sge.label) {
                *mult
                    .entry(sge.label)
                    .or_default()
                    .entry((sge.src, sge.trg))
                    .or_insert(0) += 1;
                self.window_edges.push(Reverse(ByExpiry(exp, sge)));
            }
        }
        self.pending = still_pending;
        while let Some(Reverse(ByExpiry(exp, sge))) = self.window_edges.peek().map(|r| {
            let Reverse(ByExpiry(e, s)) = r;
            Reverse(ByExpiry(*e, *s))
        }) {
            if exp > b {
                break;
            }
            self.window_edges.pop();
            *mult
                .entry(sge.label)
                .or_default()
                .entry((sge.src, sge.trg))
                .or_insert(0) -= 1;
        }

        // Apply to base relations, collecting set-level deltas per label.
        let mut label_deltas: FxHashMap<Label, Vec<(VertexId, VertexId, SetDelta)>> =
            FxHashMap::default();
        for (label, pairs) in mult {
            let rel = self.rels.get_mut(&label).expect("EDB relation exists");
            for ((s, t), d) in pairs {
                if let Some(sd) = rel.apply(s, t, d) {
                    label_deltas.entry(label).or_default().push((s, t, sd));
                }
            }
        }

        // Propagate through strata in dependency order.
        let strata = std::mem::take(&mut self.strata);
        for (head, rules) in &strata {
            // Alias TC strata come first implicitly: an alias label has no
            // rules; evaluate its TC from its alphabet deltas.
            let mut head_deltas: Vec<(VertexId, VertexId, SetDelta)> = Vec::new();
            if rules.is_empty() {
                if let Some(&tc_idx) = self.alias_tcs.get(head) {
                    let edge_deltas =
                        collect_edge_deltas(&self.tcs[tc_idx].alphabet(), &label_deltas);
                    if !edge_deltas.is_empty() {
                        let mut raw = Vec::new();
                        self.tcs[tc_idx].apply_epoch(&edge_deltas, &self.rels, &mut raw);
                        head_deltas.extend(net_deltas(raw));
                    }
                }
            } else {
                for rule in rules {
                    self.eval_rule_delta(rule, &label_deltas, &mut head_deltas);
                }
            }
            // Apply head deltas to the head's arranged relation.
            let rel = self.rels.get_mut(head).expect("IDB relation exists");
            let mut set_deltas = Vec::new();
            for (s, t, d) in head_deltas {
                let signed = match d {
                    SetDelta::Added => 1,
                    SetDelta::Removed => -1,
                };
                // For rule heads the counting already happened in
                // HeadState; for aliases the TC is authoritative. Either
                // way `d` is a set-level change.
                if let Some(sd) = rel.apply(s, t, signed) {
                    set_deltas.push((s, t, sd));
                }
            }
            if !set_deltas.is_empty() {
                label_deltas.entry(*head).or_default().extend(set_deltas);
            }
        }
        self.strata = strata;

        // Log answer deltas for this epoch.
        if let Some(deltas) = label_deltas.get(&self.answer) {
            for &(s, t, d) in deltas {
                match d {
                    SetDelta::Added => self.results_emitted += 1,
                    SetDelta::Removed => self.deletions_emitted += 1,
                }
                self.result_log.push((b, s, t, d));
            }
        }
    }

    /// Counting delta-join for one rule: for each atom with a delta, join
    /// the delta against the other atoms' current relations ("new" values
    /// for already-applied atoms, "old" for the rest — realised here by
    /// updating TC inputs before rules and processing atom deltas in
    /// sequence against the shared arranged state, which DD's worked
    /// example shows is equivalent for set-level inputs).
    fn eval_rule_delta(
        &mut self,
        rule: &CompiledRule,
        label_deltas: &FxHashMap<Label, Vec<(VertexId, VertexId, SetDelta)>>,
        head_out: &mut Vec<(VertexId, VertexId, SetDelta)>,
    ) {
        // First bring anonymous TC atoms up to date and note their deltas.
        let mut tc_deltas: FxHashMap<usize, Vec<(VertexId, VertexId, SetDelta)>> =
            FxHashMap::default();
        for atom in &rule.atoms {
            if let CompiledAtom::Tc { idx, .. } = atom {
                if self.alias_tcs.values().any(|&i| i == *idx) {
                    continue; // aliased: evaluated as its own stratum
                }
                let edge_deltas = collect_edge_deltas(&self.tcs[*idx].alphabet(), label_deltas);
                if !edge_deltas.is_empty() {
                    let mut out = Vec::new();
                    self.tcs[*idx].apply_epoch(&edge_deltas, &self.rels, &mut out);
                    tc_deltas.insert(*idx, net_deltas(out));
                }
            }
        }

        // For each atom, its set-level delta this epoch.
        let atom_delta = |atom: &CompiledAtom| -> Vec<(VertexId, VertexId, SetDelta)> {
            match atom {
                CompiledAtom::Rel {
                    pred_gated: true, ..
                } => Vec::new(),
                CompiledAtom::Rel { label, .. } => {
                    label_deltas.get(label).cloned().unwrap_or_default()
                }
                CompiledAtom::Tc { idx, .. } => {
                    match self.alias_tcs.iter().find(|(_, &i)| i == *idx) {
                        Some((al, _)) => label_deltas.get(al).cloned().unwrap_or_default(),
                        None => tc_deltas.get(idx).cloned().unwrap_or_default(),
                    }
                }
            }
        };

        // Delta-join: for atom i's delta, bind (src, trg), extend through
        // all other atoms, counting derivations. Because all relations
        // already reflect this epoch's state and inputs are sets, the
        // inclusion–exclusion of multi-delta epochs is handled by counting
        // each delta exactly once against the final state and subtracting
        // overlaps via the sign product of paired deltas.
        let n = rule.atoms.len();
        let deltas: Vec<Vec<(VertexId, VertexId, SetDelta)>> =
            rule.atoms.iter().map(atom_delta).collect();
        let mut contributions: FxHashMap<(VertexId, VertexId), i64> = FxHashMap::default();
        for i in 0..n {
            for &(s, t, d) in &deltas[i] {
                let sign = match d {
                    SetDelta::Added => 1i64,
                    SetDelta::Removed => -1i64,
                };
                // Bindings seeded from atom i's delta pair; other atoms are
                // evaluated at "final" state except atoms j > i, whose
                // *this-epoch* deltas must be excluded to avoid double
                // counting: we evaluate them at final state and subtract
                // their delta pairs (old = final − delta).
                self.join_seeded(rule, i, (s, t), sign, &deltas, &mut contributions);
            }
        }
        let head_state = self.head_states.get_mut(&rule.head).expect("head state");
        let mut pairs: Vec<((VertexId, VertexId), i64)> = contributions.into_iter().collect();
        pairs.sort_by_key(|&(p, _)| (p.0, p.1));
        for (pair, delta) in pairs {
            head_state.apply(pair, delta, head_out);
        }
    }

    /// Enumerates bindings for `rule` with atom `seed_idx` bound to
    /// `seed_pair`, evaluating atoms `j < seed_idx` at *old* state
    /// (final state minus their epoch delta) and atoms `j > seed_idx` at
    /// final state — the standard delta-join decomposition.
    fn join_seeded(
        &self,
        rule: &CompiledRule,
        seed_idx: usize,
        seed_pair: (VertexId, VertexId),
        sign: i64,
        deltas: &[Vec<(VertexId, VertexId, SetDelta)>],
        out: &mut FxHashMap<(VertexId, VertexId), i64>,
    ) {
        // Binding = variable name → vertex.
        let mut bindings: Vec<FxHashMap<&str, VertexId>> = Vec::new();
        {
            let (sv, tv) = atom_vars(&rule.atoms[seed_idx]);
            let mut b: FxHashMap<&str, VertexId> = FxHashMap::default();
            b.insert(sv, seed_pair.0);
            if let Some(&bound) = b.get(tv) {
                if bound != seed_pair.1 {
                    return;
                }
            }
            b.insert(tv, seed_pair.1);
            if sv == tv && seed_pair.0 != seed_pair.1 {
                return;
            }
            bindings.push(b);
        }

        for (j, atom) in rule.atoms.iter().enumerate() {
            if j == seed_idx {
                continue;
            }
            let (sv, tv) = atom_vars(atom);
            let mut next = Vec::new();
            for b in &bindings {
                let bs = b.get(sv).copied();
                let bt = b.get(tv).copied();
                self.atom_matches(atom, bs, bt, |s, t| {
                    if sv == tv && s != t {
                        return;
                    }
                    // Exclusion for j < seed: evaluate at old state by
                    // skipping pairs added this epoch / re-adding removed.
                    let adjust = delta_membership(&deltas[j], s, t);
                    let count_here: i64 = match adjust {
                        Some(SetDelta::Added) if j < seed_idx => 0, // not in old
                        Some(SetDelta::Removed) if j < seed_idx => 1, // was in old
                        Some(SetDelta::Removed) => 0,               // not in final
                        _ => 1,
                    };
                    if count_here == 0 {
                        return;
                    }
                    let mut nb = b.clone();
                    nb.insert(sv, s);
                    nb.insert(tv, t);
                    next.push(nb);
                });
                // j < seed with Removed pairs: those are in old but absent
                // from final state, so the adjacency misses them; add back.
                if j < seed_idx {
                    for &(s, t, d) in &deltas[j] {
                        if d != SetDelta::Removed {
                            continue;
                        }
                        if bs.is_some_and(|x| x != s) || bt.is_some_and(|x| x != t) {
                            continue;
                        }
                        if sv == tv && s != t {
                            continue;
                        }
                        let mut nb = b.clone();
                        nb.insert(sv, s);
                        nb.insert(tv, t);
                        next.push(nb);
                    }
                }
            }
            bindings = next;
            if bindings.is_empty() {
                return;
            }
        }

        for b in bindings {
            let pair = (b[rule.head_src.as_str()], b[rule.head_trg.as_str()]);
            *out.entry(pair).or_insert(0) += sign;
        }
    }

    /// Enumerates final-state matches of `atom` under optional bindings.
    fn atom_matches(
        &self,
        atom: &CompiledAtom,
        bs: Option<VertexId>,
        bt: Option<VertexId>,
        mut f: impl FnMut(VertexId, VertexId),
    ) {
        match atom {
            CompiledAtom::Rel {
                pred_gated: true, ..
            } => {}
            CompiledAtom::Rel { label, .. } => {
                let Some(rel) = self.rels.get(label) else {
                    return;
                };
                match (bs, bt) {
                    (Some(s), Some(t)) => {
                        if rel.contains(s, t) {
                            f(s, t);
                        }
                    }
                    (Some(s), None) => {
                        for &t in rel.out(s) {
                            f(s, t);
                        }
                    }
                    (None, Some(t)) => {
                        for &s in rel.inc(t) {
                            f(s, t);
                        }
                    }
                    (None, None) => {
                        for (s, t) in rel.pairs() {
                            f(s, t);
                        }
                    }
                }
            }
            CompiledAtom::Tc { idx, .. } => {
                let tc = &self.tcs[*idx];
                match (bs, bt) {
                    (Some(s), Some(t)) => {
                        if tc.contains(s, t) {
                            f(s, t);
                        }
                    }
                    _ => {
                        for (s, t) in tc.pairs() {
                            if bs.is_some_and(|x| x != s) || bt.is_some_and(|x| x != t) {
                                continue;
                            }
                            f(s, t);
                        }
                    }
                }
            }
        }
    }

    /// Current answer pairs (set level).
    pub fn answer_pairs(&self) -> FxHashSet<(VertexId, VertexId)> {
        self.rels
            .get(&self.answer)
            .map(|r| r.pairs().collect())
            .unwrap_or_default()
    }

    /// Answer pairs as of epoch boundary `t`, reconstructed from the log.
    pub fn answer_at(&self, t: Timestamp) -> FxHashSet<(VertexId, VertexId)> {
        let mut counts: FxHashMap<(VertexId, VertexId), i64> = FxHashMap::default();
        for &(b, s, tt, d) in &self.result_log {
            if b > t {
                break;
            }
            *counts.entry((s, tt)).or_insert(0) += match d {
                SetDelta::Added => 1,
                SetDelta::Removed => -1,
            };
        }
        counts
            .into_iter()
            .filter(|&(_, c)| c > 0)
            .map(|(k, _)| k)
            .collect()
    }

    /// Total reach + arranged state (metrics).
    pub fn state_size(&self) -> usize {
        self.rels.values().map(Rel::len).sum::<usize>()
            + self.tcs.iter().map(TcState::reach_size).sum::<usize>()
    }

    /// Drives the engine over an ordered stream, measuring per-epoch
    /// latency and aggregate throughput (the DD rows of Table 2/Fig 11).
    pub fn run<'a, I: IntoIterator<Item = &'a Sge>>(&mut self, stream: I) -> RunStats {
        let mut stats = RunStats::default();
        let started = Instant::now();
        let mut epoch_started = Instant::now();
        let mut last_boundary = self.next_boundary;
        for &sge in stream {
            self.process(sge);
            stats.edges += 1;
            if self.next_boundary != last_boundary {
                stats.slide_latencies.push(epoch_started.elapsed());
                epoch_started = Instant::now();
                last_boundary = self.next_boundary;
                stats.peak_state = stats.peak_state.max(self.state_size());
            }
        }
        if let Some(b) = self.next_boundary {
            self.flush_to(b);
            stats.slide_latencies.push(epoch_started.elapsed());
        }
        stats.elapsed = started.elapsed();
        stats.results = self.results_emitted;
        stats.deletions = self.deletions_emitted;
        stats.peak_state = stats.peak_state.max(self.state_size());
        stats
    }
}

fn atom_vars(atom: &CompiledAtom) -> (&str, &str) {
    match atom {
        CompiledAtom::Rel { src, trg, .. } | CompiledAtom::Tc { src, trg, .. } => (src, trg),
    }
}

fn delta_membership(
    deltas: &[(VertexId, VertexId, SetDelta)],
    s: VertexId,
    t: VertexId,
) -> Option<SetDelta> {
    deltas
        .iter()
        .rev()
        .find(|&&(a, b, _)| a == s && b == t)
        .map(|&(_, _, d)| d)
}

/// Nets set-level deltas per pair: a Removed followed by an Added for the
/// same pair within one epoch cancels out (the pair is in both the old and
/// the new state), so downstream delta-joins must not see either.
fn net_deltas(deltas: Vec<(VertexId, VertexId, SetDelta)>) -> Vec<(VertexId, VertexId, SetDelta)> {
    let mut net: FxHashMap<(VertexId, VertexId), i64> = FxHashMap::default();
    for (s, t, d) in deltas {
        *net.entry((s, t)).or_insert(0) += match d {
            SetDelta::Added => 1,
            SetDelta::Removed => -1,
        };
    }
    let mut out: Vec<(VertexId, VertexId, SetDelta)> = net
        .into_iter()
        .filter(|&(_, c)| c != 0)
        .map(|((s, t), c)| {
            debug_assert!(c.abs() == 1, "set-level deltas net to ±1");
            (
                s,
                t,
                if c > 0 {
                    SetDelta::Added
                } else {
                    SetDelta::Removed
                },
            )
        })
        .collect();
    out.sort_by_key(|&(s, t, _)| (s, t));
    out
}

fn collect_edge_deltas(
    alphabet: &[Label],
    label_deltas: &FxHashMap<Label, Vec<(VertexId, VertexId, SetDelta)>>,
) -> Vec<EdgeDelta> {
    let mut out = Vec::new();
    for &l in alphabet {
        if let Some(ds) = label_deltas.get(&l) {
            out.extend(ds.iter().map(|&(s, t, d)| (s, l, t, d)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_query::parse_program;
    use sgq_types::{Edge, SnapshotGraph};

    /// Reference: evaluate via the oracle over the window snapshot at `t`.
    fn oracle_at(
        program: &RqProgram,
        window: WindowSpec,
        stream: &[Sge],
        t: Timestamp,
    ) -> FxHashSet<(VertexId, VertexId)> {
        let mut g = SnapshotGraph::new();
        for sge in stream {
            let iv = window.interval_for(sge.t);
            if iv.contains(t) {
                g.add_edge(Edge::new(sge.src, sge.trg, sge.label));
            }
        }
        sgq_query::oracle::evaluate_answer(program, &g)
    }

    fn check_epochs(text: &str, window: WindowSpec, stream: Vec<(u64, u64, &str, u64)>) {
        let program = parse_program(text).unwrap();
        let labels = program.labels().clone();
        let sges: Vec<Sge> = stream
            .iter()
            .map(|&(s, t, l, ts)| Sge::raw(s, t, labels.get(l).unwrap(), ts))
            .collect();
        let mut dd = DdEngine::new(&SgqQuery::new(program.clone(), window));
        let last = sges.last().map(|e| e.t).unwrap_or(0);
        for &sge in &sges {
            dd.process(sge);
        }
        dd.flush_to(last + window.size + window.slide);
        // Compare at every epoch boundary.
        let mut b = window.slide;
        while b <= last + window.size {
            let expect = oracle_at(&program, window, &sges, b);
            assert_eq!(dd.answer_at(b), expect, "{text} mismatch at t={b}");
            b += window.slide;
        }
    }

    #[test]
    fn join_query_with_expiry() {
        check_epochs(
            "Ans(x, y) <- a(x, z), b(z, y).",
            WindowSpec::new(6, 2),
            vec![
                (1, 2, "a", 0),
                (2, 3, "b", 1),
                (2, 4, "b", 5),
                (5, 2, "a", 8),
                (2, 6, "b", 9),
            ],
        );
    }

    #[test]
    fn tc_query_with_expiry() {
        check_epochs(
            "Ans(x, y) <- a+(x, y).",
            WindowSpec::new(6, 2),
            vec![
                (1, 2, "a", 0),
                (2, 3, "a", 1),
                (3, 1, "a", 3),
                (3, 4, "a", 7),
                (4, 5, "a", 8),
                (1, 2, "a", 10),
            ],
        );
    }

    #[test]
    fn union_heads() {
        check_epochs(
            "D(x, y) <- a(x, y).
             D(x, y) <- b(x, y).
             Ans(x, y) <- D(x, y).",
            WindowSpec::new(4, 2),
            vec![
                (1, 2, "a", 0),
                (1, 2, "b", 1),
                (3, 4, "b", 3),
                (1, 2, "a", 5),
            ],
        );
    }

    #[test]
    fn q7_shaped_composite() {
        check_epochs(
            "RL(x, y)  <- a+(x, y), b(x, m), c(m, y).
             Ans(x, m) <- RL+(x, y), c(m, y).",
            WindowSpec::new(8, 4),
            vec![
                (1, 2, "a", 0),
                (2, 3, "a", 1),
                (1, 7, "b", 2),
                (7, 3, "c", 3),
                (9, 3, "c", 4),
                (3, 1, "a", 6),
                (1, 8, "b", 9),
                (8, 2, "c", 10),
            ],
        );
    }

    #[test]
    fn aliased_path_atom_is_shared_stratum() {
        let program = parse_program(
            "A(x, y)   <- e+(x, y) as EP, f(x, y).
             B(x, y)   <- e+(x, y) as EP, g(x, y).
             Ans(x, y) <- A(x, y).
             Ans(x, y) <- B(x, y).",
        )
        .unwrap();
        let dd = DdEngine::new(&SgqQuery::new(program, WindowSpec::sliding(10)));
        assert_eq!(dd.tcs.len(), 1, "alias shares one TC state");
    }

    #[test]
    fn multiplicity_of_duplicate_edges() {
        // The same edge twice in one window: expiry of the first copy must
        // not retract results while the second is valid.
        check_epochs(
            "Ans(x, y) <- a(x, z), b(z, y).",
            WindowSpec::new(4, 1),
            vec![
                (1, 2, "a", 0),
                (1, 2, "a", 2),
                (2, 3, "b", 3),
                (2, 3, "b", 5),
            ],
        );
    }

    #[test]
    fn run_collects_epoch_metrics() {
        let program = parse_program("Ans(x, y) <- a+(x, y).").unwrap();
        let labels = program.labels().clone();
        let a = labels.get("a").unwrap();
        let mut dd = DdEngine::new(&SgqQuery::new(program, WindowSpec::new(10, 2)));
        let stream: Vec<Sge> = (0..50u64)
            .map(|i| Sge::raw(i % 9, (i + 3) % 9, a, i))
            .collect();
        let stats = dd.run(&stream);
        assert_eq!(stats.edges, 50);
        assert!(stats.results > 0);
        assert!(stats.slide_latencies.len() > 5);
    }
}
