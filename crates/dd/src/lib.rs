//! # sgq-dd — the Differential-Dataflow-style incremental baseline
//!
//! The paper evaluates its SGA engine against Timely/Differential Dataflow
//! (§7.2.2), "the only general-purpose system that can be used to
//! incrementally evaluate recursive computations". This crate is a
//! from-scratch substitute with the same architecture and asymptotics:
//!
//! * **Epoch batching** ([`DdEngine`]): all sgts arriving within one slide
//!   interval share a logical timestamp, so larger slides mean better
//!   throughput (the Figure 11 shape), unlike the tuple-at-a-time SGA
//!   engine.
//! * **Arranged counted collections** ([`collection::Rel`]): multiset
//!   relations with set-level change extraction — the counting IVM
//!   algorithm for non-recursive rules.
//! * **Delta joins** for rule bodies, seeded per input delta.
//! * **`iterate` for recursion** ([`tc::TcState`]): semi-naive expansion
//!   for insertions and DRed (delete–re-derive) for retractions over the
//!   regex product graph. Window expirations are ordinary retractions —
//!   the general-purpose IVM cost that S-PATH's direct approach avoids.
//!
//! See `DESIGN.md` §5 for why this substitution preserves the baseline's
//! experimental behaviour.

#![warn(missing_docs)]

pub mod collection;
pub mod engine;
pub mod tc;

pub use collection::{Rel, SetDelta};
pub use engine::DdEngine;
pub use tc::TcState;
