//! Multiset collections with set-level change extraction.
//!
//! Differential-dataflow collections are multisets of records with signed
//! multiplicities; graph queries need *set* semantics on top (Def. 12), so
//! [`Rel`] tracks multiplicities (the counting algorithm of Gupta et al.,
//! \[32\] in the paper) and reports a [`SetDelta`] exactly when a record's
//! support crosses zero.

use sgq_types::{FxHashMap, VertexId};

/// A set-level change to a binary relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetDelta {
    /// The pair's support became positive.
    Added,
    /// The pair's support dropped to zero.
    Removed,
}

/// A counted binary relation with set-level adjacency indexes.
#[derive(Debug, Default, Clone)]
pub struct Rel {
    counts: FxHashMap<(VertexId, VertexId), i64>,
    out: FxHashMap<VertexId, Vec<VertexId>>,
    inc: FxHashMap<VertexId, Vec<VertexId>>,
}

impl Rel {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a multiplicity delta, returning the set-level change if the
    /// pair's support crossed zero.
    ///
    /// # Panics
    /// Panics if support would become negative (a retraction of a record
    /// that was never inserted — an upstream bug).
    pub fn apply(&mut self, s: VertexId, t: VertexId, delta: i64) -> Option<SetDelta> {
        if delta == 0 {
            return None;
        }
        let c = self.counts.entry((s, t)).or_insert(0);
        let before = *c;
        *c += delta;
        assert!(*c >= 0, "negative multiplicity for ({s:?},{t:?})");
        let after = *c;
        if *c == 0 {
            self.counts.remove(&(s, t));
        }
        if before == 0 && after > 0 {
            self.out.entry(s).or_default().push(t);
            self.inc.entry(t).or_default().push(s);
            Some(SetDelta::Added)
        } else if before > 0 && after == 0 {
            if let Some(v) = self.out.get_mut(&s) {
                if let Some(p) = v.iter().position(|&x| x == t) {
                    v.swap_remove(p);
                }
            }
            if let Some(v) = self.inc.get_mut(&t) {
                if let Some(p) = v.iter().position(|&x| x == s) {
                    v.swap_remove(p);
                }
            }
            Some(SetDelta::Removed)
        } else {
            None
        }
    }

    /// Set-level membership.
    pub fn contains(&self, s: VertexId, t: VertexId) -> bool {
        self.counts.contains_key(&(s, t))
    }

    /// Set-level out-neighbours.
    pub fn out(&self, s: VertexId) -> &[VertexId] {
        self.out.get(&s).map_or(&[], Vec::as_slice)
    }

    /// Set-level in-neighbours.
    pub fn inc(&self, t: VertexId) -> &[VertexId] {
        self.inc.get(&t).map_or(&[], Vec::as_slice)
    }

    /// Iterates over distinct pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.counts.keys().copied()
    }

    /// Number of distinct pairs.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u64) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn support_crossing_reports_set_deltas() {
        let mut r = Rel::new();
        assert_eq!(r.apply(v(1), v(2), 1), Some(SetDelta::Added));
        assert_eq!(r.apply(v(1), v(2), 1), None); // 1 → 2: no set change
        assert_eq!(r.apply(v(1), v(2), -1), None); // 2 → 1
        assert_eq!(r.apply(v(1), v(2), -1), Some(SetDelta::Removed));
        assert!(r.is_empty());
    }

    #[test]
    fn adjacency_tracks_set_level() {
        let mut r = Rel::new();
        r.apply(v(1), v(2), 2);
        r.apply(v(1), v(3), 1);
        let mut o = r.out(v(1)).to_vec();
        o.sort();
        assert_eq!(o, vec![v(2), v(3)]);
        r.apply(v(1), v(2), -2);
        assert_eq!(r.out(v(1)), &[v(3)]);
        assert_eq!(r.inc(v(2)), &[] as &[VertexId]);
    }

    #[test]
    #[should_panic]
    fn negative_support_panics() {
        let mut r = Rel::new();
        r.apply(v(1), v(2), -1);
    }

    #[test]
    fn zero_delta_is_noop() {
        let mut r = Rel::new();
        assert_eq!(r.apply(v(1), v(2), 0), None);
        assert!(r.is_empty());
    }
}
