//! Incremental regular-expression reachability: semi-naive insertion and
//! DRed (delete–re-derive, \[32\]) deletion over the product graph.
//!
//! This is the general-purpose IVM treatment of recursion that the paper
//! contrasts S-PATH against (§2.2, §7.2.2): it ignores the temporal
//! structure of sliding windows, so every expired edge triggers an
//! over-estimate of deleted derivations followed by re-derivation — cheap
//! on tree-shaped data (SNB `replyOf`), expensive on cyclic graphs (SO).
//!
//! Derivation rules over the DFA `D` of the path atom's regex:
//!
//! ```text
//! reach(u, v, t) ← edge(u, l, v), t = δ(s₀, l).
//! reach(x, v, t) ← reach(x, u, s), edge(u, l, v), t = δ(s, l).
//! ```
//!
//! The result pairs are `(x, v)` with `reach(x, v, t)`, `t ∈ F`.

use crate::collection::{Rel, SetDelta};
use sgq_automata::{Dfa, Regex, StateId};
use sgq_types::{FxHashMap, FxHashSet, Label, VertexId};

/// A set-level edge change feeding a TC state.
pub type EdgeDelta = (VertexId, Label, VertexId, SetDelta);

/// Incrementally maintained product-graph reachability for one path atom.
pub struct TcState {
    dfa: Dfa,
    /// All derived `(x, v, state)` tuples.
    reach: FxHashSet<(VertexId, VertexId, StateId)>,
    /// Index: `(v, state)` → sources `x` with `reach(x, v, state)`.
    by_end: FxHashMap<(VertexId, StateId), FxHashSet<VertexId>>,
    /// Support per result pair = number of accepting reach tuples.
    pair_support: FxHashMap<(VertexId, VertexId), u32>,
}

impl TcState {
    /// Builds the state for a path atom regex.
    pub fn new(regex: &Regex) -> Self {
        TcState {
            dfa: Dfa::from_regex(regex),
            reach: FxHashSet::default(),
            by_end: FxHashMap::default(),
            pair_support: FxHashMap::default(),
        }
    }

    /// The alphabet labels this atom reads.
    pub fn alphabet(&self) -> Vec<Label> {
        self.dfa.alphabet().collect()
    }

    /// Current result pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.pair_support.keys().copied()
    }

    /// Set-level membership of a result pair.
    pub fn contains(&self, x: VertexId, v: VertexId) -> bool {
        self.pair_support.contains_key(&(x, v))
    }

    /// Number of reach tuples (state-size metric).
    pub fn reach_size(&self) -> usize {
        self.reach.len()
    }

    /// Applies one epoch's edge deltas given the *current* base relations
    /// (`rels[l]` must reflect the deltas already — set-level adjacency is
    /// read for traversal). Deletions run first (DRed), then insertions
    /// (semi-naive). Returns the set-level result-pair deltas.
    pub fn apply_epoch(
        &mut self,
        deltas: &[EdgeDelta],
        rels: &FxHashMap<Label, Rel>,
        out: &mut Vec<(VertexId, VertexId, SetDelta)>,
    ) {
        let dels: Vec<&EdgeDelta> = deltas.iter().filter(|d| d.3 == SetDelta::Removed).collect();
        let adds: Vec<&EdgeDelta> = deltas.iter().filter(|d| d.3 == SetDelta::Added).collect();
        if !dels.is_empty() {
            self.dred_delete(&dels, rels, out);
        }
        if !adds.is_empty() {
            self.seminaive_insert(&adds, rels, out);
        }
    }

    fn add_tuple(
        &mut self,
        x: VertexId,
        v: VertexId,
        t: StateId,
        out: &mut Vec<(VertexId, VertexId, SetDelta)>,
    ) -> bool {
        if !self.reach.insert((x, v, t)) {
            return false;
        }
        self.by_end.entry((v, t)).or_default().insert(x);
        if self.dfa.is_accepting(t) {
            let c = self.pair_support.entry((x, v)).or_insert(0);
            *c += 1;
            if *c == 1 {
                out.push((x, v, SetDelta::Added));
            }
        }
        true
    }

    fn remove_tuple(
        &mut self,
        x: VertexId,
        v: VertexId,
        t: StateId,
        out: &mut Vec<(VertexId, VertexId, SetDelta)>,
    ) -> bool {
        if !self.reach.remove(&(x, v, t)) {
            return false;
        }
        if let Some(set) = self.by_end.get_mut(&(v, t)) {
            set.remove(&x);
            if set.is_empty() {
                self.by_end.remove(&(v, t));
            }
        }
        if self.dfa.is_accepting(t) {
            let c = self
                .pair_support
                .get_mut(&(x, v))
                .expect("support for accepting tuple");
            *c -= 1;
            if *c == 0 {
                self.pair_support.remove(&(x, v));
                out.push((x, v, SetDelta::Removed));
            }
        }
        true
    }

    /// Semi-naive insertion: seed with the new edges, then expand the
    /// frontier through the (updated) base adjacency.
    fn seminaive_insert(
        &mut self,
        adds: &[&EdgeDelta],
        rels: &FxHashMap<Label, Rel>,
        out: &mut Vec<(VertexId, VertexId, SetDelta)>,
    ) {
        let mut frontier: Vec<(VertexId, VertexId, StateId)> = Vec::new();
        for &&(u, l, v, _) in adds {
            for (s, t) in self.dfa.transitions_on(l).to_vec() {
                // Rule R1: the new edge starts a path.
                if s == self.dfa.start() && self.add_tuple(u, v, t, out) {
                    frontier.push((u, v, t));
                }
                // Rule R2 with Δedge: extend existing reach tuples ending at u.
                let sources: Vec<VertexId> = self
                    .by_end
                    .get(&(u, s))
                    .map(|xs| xs.iter().copied().collect())
                    .unwrap_or_default();
                for x in sources {
                    if self.add_tuple(x, v, t, out) {
                        frontier.push((x, v, t));
                    }
                }
            }
        }
        // Rule R2 with Δreach: expand the frontier through all live edges.
        while let Some((x, u, s)) = frontier.pop() {
            for (l, t) in self.dfa.transitions_from(s).collect::<Vec<_>>() {
                let Some(rel) = rels.get(&l) else { continue };
                for &v in rel.out(u) {
                    if self.add_tuple(x, v, t, out) {
                        frontier.push((x, v, t));
                    }
                }
            }
        }
    }

    /// DRed: over-estimate deletions (anything derivable through a deleted
    /// edge), remove them, then re-derive from surviving tuples.
    fn dred_delete(
        &mut self,
        dels: &[&EdgeDelta],
        rels: &FxHashMap<Label, Rel>,
        out: &mut Vec<(VertexId, VertexId, SetDelta)>,
    ) {
        // --- Over-estimate -----------------------------------------------
        let mut suspect: FxHashSet<(VertexId, VertexId, StateId)> = FxHashSet::default();
        let mut queue: Vec<(VertexId, VertexId, StateId)> = Vec::new();
        for &&(u, l, v, _) in dels {
            for (s, t) in self.dfa.transitions_on(l).to_vec() {
                if s == self.dfa.start()
                    && self.reach.contains(&(u, v, t))
                    && suspect.insert((u, v, t))
                {
                    queue.push((u, v, t));
                }
                let sources: Vec<VertexId> = self
                    .by_end
                    .get(&(u, s))
                    .map(|xs| xs.iter().copied().collect())
                    .unwrap_or_default();
                for x in sources {
                    if self.reach.contains(&(x, v, t)) && suspect.insert((x, v, t)) {
                        queue.push((x, v, t));
                    }
                }
            }
        }
        // Cascade the over-estimate through live edges.
        while let Some((x, u, s)) = queue.pop() {
            for (l, t) in self.dfa.transitions_from(s).collect::<Vec<_>>() {
                let Some(rel) = rels.get(&l) else { continue };
                for &v in rel.out(u) {
                    if self.reach.contains(&(x, v, t)) && suspect.insert((x, v, t)) {
                        queue.push((x, v, t));
                    }
                }
            }
        }
        for &(x, v, t) in &suspect {
            self.remove_tuple(x, v, t, out);
        }

        // --- Re-derive ----------------------------------------------------
        // A suspect tuple survives if it has an alternative derivation from
        // non-suspect tuples; iterate to fixpoint (semi-naive).
        let mut frontier: Vec<(VertexId, VertexId, StateId)> = Vec::new();
        for &(x, v, t) in &suspect {
            if self.try_rederive(x, v, t, rels) && self.add_tuple(x, v, t, out) {
                frontier.push((x, v, t));
            }
        }
        while let Some((x, u, s)) = frontier.pop() {
            for (l, t) in self.dfa.transitions_from(s).collect::<Vec<_>>() {
                let Some(rel) = rels.get(&l) else { continue };
                for &v in rel.out(u) {
                    if suspect.contains(&(x, v, t))
                        && !self.reach.contains(&(x, v, t))
                        && self.add_tuple(x, v, t, out)
                    {
                        frontier.push((x, v, t));
                    }
                }
            }
        }
    }

    /// Whether `(x, v, t)` has a one-step derivation from current state.
    fn try_rederive(
        &self,
        x: VertexId,
        v: VertexId,
        t: StateId,
        rels: &FxHashMap<Label, Rel>,
    ) -> bool {
        // R1: a direct edge from x when t is reachable from the start.
        for (l, s) in self.rev_transitions(t) {
            let Some(rel) = rels.get(&l) else { continue };
            for &u in rel.inc(v) {
                if s == self.dfa.start() && u == x {
                    return true;
                }
                if self.reach.contains(&(x, u, s)) {
                    return true;
                }
            }
        }
        false
    }

    fn rev_transitions(&self, t: StateId) -> Vec<(Label, StateId)> {
        let mut out = Vec::new();
        for l in self.dfa.alphabet().collect::<Vec<_>>() {
            for &(s, tt) in self.dfa.transitions_on(l) {
                if tt == t {
                    out.push((l, s));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_automata::Regex;

    const A: Label = Label(0);

    fn v(i: u64) -> VertexId {
        VertexId(i)
    }

    /// Applies edge deltas to both the base relation map and the TC state.
    struct Harness {
        tc: TcState,
        rels: FxHashMap<Label, Rel>,
    }

    impl Harness {
        fn new(re: &Regex) -> Self {
            let tc = TcState::new(re);
            let mut rels = FxHashMap::default();
            for l in tc.alphabet() {
                rels.insert(l, Rel::new());
            }
            Harness { tc, rels }
        }

        fn step(&mut self, changes: &[(u64, Label, u64, i64)]) -> Vec<(u64, u64, SetDelta)> {
            let mut edge_deltas = Vec::new();
            for &(s, l, t, d) in changes {
                if let Some(sd) = self.rels.get_mut(&l).unwrap().apply(v(s), v(t), d) {
                    edge_deltas.push((v(s), l, v(t), sd));
                }
            }
            let mut out = Vec::new();
            self.tc.apply_epoch(&edge_deltas, &self.rels, &mut out);
            out.into_iter().map(|(a, b, d)| (a.0, b.0, d)).collect()
        }

        fn pairs(&self) -> Vec<(u64, u64)> {
            let mut p: Vec<(u64, u64)> = self.tc.pairs().map(|(a, b)| (a.0, b.0)).collect();
            p.sort();
            p
        }
    }

    #[test]
    fn chain_insertion() {
        let mut h = Harness::new(&Regex::plus(Regex::label(A)));
        h.step(&[(1, A, 2, 1)]);
        h.step(&[(2, A, 3, 1)]);
        assert_eq!(h.pairs(), vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn deletion_splits_chain() {
        let mut h = Harness::new(&Regex::plus(Regex::label(A)));
        h.step(&[(1, A, 2, 1), (2, A, 3, 1), (3, A, 4, 1)]);
        assert_eq!(h.pairs().len(), 6);
        let out = h.step(&[(2, A, 3, -1)]);
        assert_eq!(h.pairs(), vec![(1, 2), (3, 4)]);
        assert_eq!(
            out.iter()
                .filter(|(_, _, d)| *d == SetDelta::Removed)
                .count(),
            4
        );
    }

    #[test]
    fn deletion_on_cycle_rederives_survivors() {
        // 1→2→3→1 cycle plus chord 1→3: deleting 2→3 keeps 1→3 via chord.
        let mut h = Harness::new(&Regex::plus(Regex::label(A)));
        h.step(&[(1, A, 2, 1), (2, A, 3, 1), (3, A, 1, 1), (1, A, 3, 1)]);
        assert_eq!(h.pairs().len(), 9, "full closure of the cycle");
        h.step(&[(2, A, 3, -1)]);
        // Remaining edges 1→2, 3→1, 1→3: closure is {1,3}×{1,3} ∪ x→2 rows.
        let p = h.pairs();
        assert!(p.contains(&(1, 3)));
        assert!(p.contains(&(3, 3)));
        assert!(p.contains(&(1, 1)));
        assert!(p.contains(&(3, 2)));
        assert!(!p.contains(&(2, 3)));
        assert!(!p.contains(&(2, 1)), "2 has no outgoing edges left");
    }

    #[test]
    fn reinsertion_after_deletion() {
        let mut h = Harness::new(&Regex::plus(Regex::label(A)));
        h.step(&[(1, A, 2, 1), (2, A, 3, 1)]);
        h.step(&[(1, A, 2, -1)]);
        assert_eq!(h.pairs(), vec![(2, 3)]);
        h.step(&[(1, A, 2, 1)]);
        assert_eq!(h.pairs(), vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn multiplicity_changes_do_not_touch_tc() {
        let mut h = Harness::new(&Regex::plus(Regex::label(A)));
        h.step(&[(1, A, 2, 1)]);
        // Second copy of the same edge: no set-level delta, no TC churn.
        let out = h.step(&[(1, A, 2, 1)]);
        assert!(out.is_empty());
        let out = h.step(&[(1, A, 2, -1)]);
        assert!(out.is_empty());
        assert_eq!(h.pairs(), vec![(1, 2)]);
    }

    #[test]
    fn concat_regex() {
        let b = Label(1);
        let re = Regex::concat(vec![Regex::label(A), Regex::plus(Regex::label(b))]);
        let mut h = Harness::new(&re);
        h.step(&[(1, A, 2, 1), (2, b, 3, 1), (3, b, 4, 1)]);
        assert_eq!(h.pairs(), vec![(1, 3), (1, 4)]);
        h.step(&[(2, b, 3, -1)]);
        assert_eq!(h.pairs(), vec![] as Vec<(u64, u64)>);
    }

    #[test]
    fn matches_from_scratch_closure_randomized() {
        use sgq_types::FxHashSet;
        // Pseudo-random adds/removes; invariant: pairs == brute-force
        // closure of the live edge set.
        let mut h = Harness::new(&Regex::plus(Regex::label(A)));
        let mut live: FxHashSet<(u64, u64)> = FxHashSet::default();
        let mut seed = 0xdeadbeefu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..300 {
            let s = rnd() % 8;
            let t = rnd() % 8;
            if live.contains(&(s, t)) {
                live.remove(&(s, t));
                h.step(&[(s, A, t, -1)]);
            } else {
                live.insert((s, t));
                h.step(&[(s, A, t, 1)]);
            }
            // Brute-force closure.
            let mut closure: FxHashSet<(u64, u64)> = live.iter().copied().collect();
            loop {
                let mut grew = false;
                let snapshot: Vec<(u64, u64)> = closure.iter().copied().collect();
                for &(a, b) in &snapshot {
                    for &(c, d) in &live {
                        if b == c && closure.insert((a, d)) {
                            grew = true;
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
            let mut expect: Vec<(u64, u64)> = closure.into_iter().collect();
            expect.sort();
            assert_eq!(h.pairs(), expect);
        }
    }
}
