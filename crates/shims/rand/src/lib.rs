//! Offline stand-in for the `rand` crate (see `crates/shims/README.md`).
//!
//! Implements the subset the workspace uses: [`rngs::SmallRng`] (a
//! xoshiro256++ generator), [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_bool`, `gen_range`.

#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator core: a source of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }

    /// Samples uniformly from the half-open range `low..high`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        let lo = range.start.to_i128();
        let hi = range.end.to_i128();
        assert!(lo < hi, "gen_range: empty range");
        let span = (hi - lo) as u128;
        // Lemire-style scaling: maps 64 random bits onto [0, span).
        let v = ((self.next_u64() as u128).wrapping_mul(span) >> 64) as i128 + lo;
        T::from_i128(v)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from raw random bits (subset of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Builds a sample from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 significant bits → uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Widens to `i128` (all supported types embed losslessly).
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.85)).count();
        assert!((8200..8800).contains(&hits), "hits {hits}");
    }
}
