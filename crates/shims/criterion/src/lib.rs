//! Offline stand-in for the `criterion` crate (see `crates/shims/README.md`).
//!
//! Provides the API subset the benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], group configuration
//! (`sample_size`, `warm_up_time`, `measurement_time`), `bench_function` /
//! `bench_with_input`, [`BenchmarkId`] and [`Bencher::iter`] — backed by a
//! plain wall-clock sampler: per benchmark it warms up, collects up to
//! `sample_size` timed samples within the measurement budget, and prints
//! `min/mean/p50` to stdout. No statistics, baselines, or reports.
//!
//! A benchmark-name substring filter can be passed as the first CLI
//! argument (`cargo bench --bench table2 -- PATTERN`), mirroring
//! criterion's filtering well enough for interactive use.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark registry/driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag CLI argument = benchmark name filter. Flags that
        // cargo-bench forwards (e.g. `--bench`) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// A benchmark identifier: function name plus an optional parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id (used when the group name carries the function).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total timing budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let full_id = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full_id) {
            return;
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full_id);
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting one sample per call until the sample
    /// budget or the measurement budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run untimed until the warm-up budget elapses (at least
        // once, so one-shot setup costs are off the clock).
        let warm_started = Instant::now();
        loop {
            black_box(routine());
            if warm_started.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let s = Instant::now();
            black_box(routine());
            self.samples.push(s.elapsed());
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, full_id: &str) {
        if self.samples.is_empty() {
            println!("{full_id:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let p50 = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{full_id:<48} min {:>10} mean {:>10} p50 {:>10} ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(p50),
            sorted.len()
        );
    }

    /// Collected samples (used by harness-level summaries).
    pub fn samples(&self) -> &[Duration] {
        &self.samples
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions as a single runnable unit.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_samples() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        assert!(runs >= 4, "warm-up + 3 samples, got {runs}");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("other".into()),
        };
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        assert_eq!(runs, 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("Q2", "T=10d").id, "Q2/T=10d");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }
}
