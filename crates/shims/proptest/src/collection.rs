//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy producing `Vec`s of `element` values with a length drawn
/// uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "vec strategy: empty size range");
    VecStrategy { element, size }
}

/// The result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = self.size.start + rng.below(span.max(1));
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::for_test("vec_lengths");
        let s = vec(0u64..5, 2..6);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
