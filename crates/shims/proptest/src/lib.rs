//! Offline stand-in for the `proptest` crate (see `crates/shims/README.md`).
//!
//! Supports the subset the test suite uses: the [`proptest!`] macro with
//! optional `#![proptest_config(...)]`, [`strategy::Strategy`] with
//! `prop_map` / `prop_recursive` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`strategy::Just`], [`prop_oneof!`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Cases are generated from a deterministic per-test RNG (seeded by test
//! name, overridable via `PROPTEST_SHIM_SEED`). There is **no shrinking**:
//! a failing case panics with the assertion message, so strategies should
//! include enough context in assertions (the existing tests do).

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: one or more `fn name(pat in strategy, ...) { body }`
/// items, each expanded to a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] (tt-muncher over test items).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(16).saturating_add(256),
                    "proptest shim: too many rejected cases (prop_assume too strict?)"
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", accepted + 1, msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}: {}", left, right, format!($($fmt)*)),
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// Discards the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
