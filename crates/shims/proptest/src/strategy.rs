//! Value-generation strategies (subset of `proptest::strategy`).

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value *tree* (no shrinking): a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// the previous depth level and returns the expansion one level
    /// deeper. Generation picks, at each level, between the base case and
    /// the expansion, so depth is bounded by construction. The
    /// `_desired_size` / `_expected_branch_size` parameters exist for
    /// call-site compatibility and are ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let expanded = recurse(level).boxed();
            level = OneOf::new(vec![base.clone(), expanded]).boxed();
        }
        level
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased strategies (see [`crate::prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for OneOf<V> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<V> OneOf<V> {
    /// A strategy choosing uniformly among `arms`.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Integer types generable from ranges.
pub trait RangeValue: Copy {
    /// Widens to `i128`.
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_i128();
        let hi = self.end.to_i128();
        assert!(lo < hi, "strategy range is empty");
        let span = (hi - lo) as u128;
        let v = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128 + lo;
        T::from_i128(v)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy_tests")
    }

    #[test]
    fn range_strategy_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3u64..9).generate(&mut r);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut r = rng();
        let s = (0u64..10, 1u64..5).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((1..14).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut r = rng();
        let s = OneOf::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_strategy_terminates_and_nests() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        let s = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..200 {
            if matches!(s.generate(&mut r), Tree::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node, "recursion never expanded");
    }
}
