//! Runner configuration, case errors, and the deterministic test RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::hash::{Hash, Hasher};

/// Per-`proptest!` block configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (does not count).
    Reject(String),
    /// An assertion failed (fails the whole test).
    Fail(String),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic RNG driving strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seeded per test name so failures reproduce across runs; the
    /// `PROPTEST_SHIM_SEED` environment variable perturbs the base seed to
    /// explore different case sets.
    pub fn for_test(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_cafe);
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut hasher);
        base.hash(&mut hasher);
        TestRng {
            inner: SmallRng::seed_from_u64(hasher.finish()),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}
