//! `sgq` — the s-graffito command line: register a persistent streaming
//! graph query against an edge-stream file and print results as they are
//! derived.
//!
//! ```text
//! sgq run --query q.rq --stream edges.tsv --window 720 --slide 24
//! sgq run --gcore q.gcore --stream edges.tsv --stats
//! sgq explain --query q.rq --window 720 [--plans]
//! sgq gen --dataset so --edges 5000 --vertices 500 --out edges.tsv
//! ```
//!
//! Queries are Datalog-style RQ programs (`--query`, see
//! `sgq_query::parser`) or G-CORE texts (`--gcore`, window taken from the
//! `ON … WINDOW` clause). Streams are `src dst label timestamp` lines
//! (SNAP-style, see `sgq_datagen::io`). Timestamps are ticks; `--window` /
//! `--slide` are in the same unit.

use s_graffito::core::engine::{Engine, EngineOptions, PathImpl, PatternImpl};
use s_graffito::core::planner::{plan_canonical, Plan};
use s_graffito::core::{optimizer, rewrite};
use s_graffito::datagen::{self, io as stream_io, resolve, RawStream, SnbConfig, SoConfig};
use s_graffito::query::gcore::parse_gcore;
use s_graffito::query::{parse_program, SgqQuery, WindowSpec};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match Command::parse(&args) {
        Ok(cmd) => match run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("sgq: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("sgq: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  sgq run     --query FILE.rq | --gcore FILE   --stream FILE.tsv
              [--window N] [--slide N] [--label-window LABEL=SIZE[:SLIDE]]...
              [--path-impl direct|negative] [--pattern-impl hash|wcoj]
              [--plan N | --optimize] [--paths] [--quiet] [--stats] [--at T]
  sgq explain --query FILE.rq | --gcore FILE   [--window N] [--slide N] [--plans]
  sgq gen     --dataset so|snb --edges N [--vertices N] [--seed N] --out FILE.tsv

  --window/--slide default to 720/24 ticks (the paper's 30-day window, 1-day
  slide, at 24 ticks per day); G-CORE queries take both from their ON clause.";

/// A parsed command line.
#[derive(Debug, PartialEq)]
enum Command {
    Run(RunArgs),
    Explain(ExplainArgs),
    Gen(GenArgs),
}

#[derive(Debug, PartialEq)]
struct RunArgs {
    query: QuerySource,
    stream: PathBuf,
    window: Option<u64>,
    slide: Option<u64>,
    /// Per-input-label window overrides (`label=size[:slide]`).
    label_windows: Vec<(String, u64, u64)>,
    path_impl: PathImpl,
    pattern_impl: PatternImpl,
    /// Plan index into the enumerated plan space (0 = canonical).
    plan: Option<usize>,
    /// Choose the plan by calibration on a stream prefix.
    optimize: bool,
    /// Materialize and print witness paths.
    paths: bool,
    /// Suppress per-result lines.
    quiet: bool,
    /// Print run statistics at the end.
    stats: bool,
    /// Also print the distinct answer set valid at this instant.
    at: Option<u64>,
}

#[derive(Debug, PartialEq)]
struct ExplainArgs {
    query: QuerySource,
    window: Option<u64>,
    slide: Option<u64>,
    /// Show the whole enumerated plan space, not just the canonical plan.
    plans: bool,
}

#[derive(Debug, PartialEq)]
struct GenArgs {
    dataset: String,
    edges: usize,
    vertices: u64,
    seed: u64,
    out: PathBuf,
}

#[derive(Debug, PartialEq)]
enum QuerySource {
    Datalog(PathBuf),
    Gcore(PathBuf),
}

impl Command {
    fn parse(args: &[String]) -> Result<Command, String> {
        let Some((sub, rest)) = args.split_first() else {
            return Err("missing subcommand".into());
        };
        let mut flags = Flags::new(rest)?;
        let cmd = match sub.as_str() {
            "run" => {
                let cmd = Command::Run(RunArgs {
                    query: flags.query_source()?,
                    stream: flags.path("--stream")?.ok_or("`run` needs --stream")?,
                    window: flags.num("--window")?,
                    slide: flags.num("--slide")?,
                    label_windows: flags
                        .values("--label-window")?
                        .iter()
                        .map(|v| parse_label_window(v))
                        .collect::<Result<Vec<_>, _>>()?,
                    path_impl: match flags.value("--path-impl")?.as_deref() {
                        None | Some("direct") => PathImpl::Direct,
                        Some("negative") => PathImpl::NegativeTuple,
                        Some(o) => return Err(format!("unknown --path-impl `{o}`")),
                    },
                    pattern_impl: match flags.value("--pattern-impl")?.as_deref() {
                        None | Some("hash") => PatternImpl::HashTree,
                        Some("wcoj") => PatternImpl::Wcoj,
                        Some(o) => return Err(format!("unknown --pattern-impl `{o}`")),
                    },
                    plan: flags.num("--plan")?.map(|n| n as usize),
                    optimize: flags.flag("--optimize"),
                    paths: flags.flag("--paths"),
                    quiet: flags.flag("--quiet"),
                    stats: flags.flag("--stats"),
                    at: flags.num("--at")?,
                });
                if matches!(&cmd, Command::Run(a) if a.plan.is_some() && a.optimize) {
                    return Err("--plan and --optimize are mutually exclusive".into());
                }
                cmd
            }
            "explain" => Command::Explain(ExplainArgs {
                query: flags.query_source()?,
                window: flags.num("--window")?,
                slide: flags.num("--slide")?,
                plans: flags.flag("--plans"),
            }),
            "gen" => Command::Gen(GenArgs {
                dataset: flags
                    .value("--dataset")?
                    .ok_or("`gen` needs --dataset so|snb")?,
                edges: flags.num("--edges")?.ok_or("`gen` needs --edges")? as usize,
                vertices: flags.num("--vertices")?.unwrap_or(0),
                seed: flags.num("--seed")?.unwrap_or(42),
                out: flags.path("--out")?.ok_or("`gen` needs --out")?,
            }),
            other => return Err(format!("unknown subcommand `{other}`")),
        };
        flags.finish()?;
        Ok(cmd)
    }
}

/// Minimal `--flag [value]` scanner with leftover detection.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
    used: Vec<bool>,
}

impl Flags {
    fn new(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if !a.starts_with("--") {
                return Err(format!("unexpected argument `{a}`"));
            }
            let value = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 1;
                    Some(v.clone())
                }
                _ => None,
            };
            pairs.push((a.clone(), value));
            i += 1;
        }
        let used = vec![false; pairs.len()];
        Ok(Flags { pairs, used })
    }

    /// All occurrences of a repeatable `--flag value`.
    fn values(&mut self, name: &str) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == name {
                self.used[i] = true;
                match v {
                    Some(v) => out.push(v.clone()),
                    None => return Err(format!("{name} needs a value")),
                }
            }
        }
        Ok(out)
    }

    fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == name {
                self.used[i] = true;
                return match v {
                    Some(v) => Ok(Some(v.clone())),
                    None => Err(format!("{name} needs a value")),
                };
            }
        }
        Ok(None)
    }

    fn flag(&mut self, name: &str) -> bool {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == name && v.is_none() {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn num(&mut self, name: &str) -> Result<Option<u64>, String> {
        match self.value(name)? {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("{name} must be an integer, got `{v}`")),
            None => Ok(None),
        }
    }

    fn path(&mut self, name: &str) -> Result<Option<PathBuf>, String> {
        Ok(self.value(name)?.map(PathBuf::from))
    }

    fn query_source(&mut self) -> Result<QuerySource, String> {
        match (self.path("--query")?, self.path("--gcore")?) {
            (Some(q), None) => Ok(QuerySource::Datalog(q)),
            (None, Some(g)) => Ok(QuerySource::Gcore(g)),
            (Some(_), Some(_)) => Err("--query and --gcore are mutually exclusive".into()),
            (None, None) => Err("need --query FILE.rq or --gcore FILE".into()),
        }
    }

    fn finish(self) -> Result<(), String> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.used[i] {
                return Err(format!("unknown or misplaced flag `{k}`"));
            }
        }
        Ok(())
    }
}

/// Parses `label=size[:slide]` (slide defaults to 1).
fn parse_label_window(text: &str) -> Result<(String, u64, u64), String> {
    let (label, spec) = text
        .split_once('=')
        .ok_or_else(|| format!("--label-window needs `label=size[:slide]`, got `{text}`"))?;
    let (size, slide) = match spec.split_once(':') {
        Some((sz, sl)) => (sz, sl),
        None => (spec, "1"),
    };
    let size: u64 = size
        .parse()
        .map_err(|_| format!("bad window size in `{text}`"))?;
    let slide: u64 = slide
        .parse()
        .map_err(|_| format!("bad slide in `{text}`"))?;
    if size == 0 || slide == 0 {
        return Err(format!("window size/slide must be positive in `{text}`"));
    }
    Ok((label.trim().to_string(), size, slide))
}

/// Loads the query, applying window overrides (Datalog defaults 720/24;
/// G-CORE keeps its ON-clause window unless overridden).
fn load_query(
    source: &QuerySource,
    window: Option<u64>,
    slide: Option<u64>,
) -> Result<SgqQuery, String> {
    let read = |p: &PathBuf| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    };
    match source {
        QuerySource::Datalog(p) => {
            let program = parse_program(&read(p)?).map_err(|e| e.to_string())?;
            let w = WindowSpec::new(window.unwrap_or(720), slide.unwrap_or(24));
            Ok(SgqQuery::new(program, w))
        }
        QuerySource::Gcore(p) => {
            let mut q = parse_gcore(&read(p)?).map_err(|e| e.to_string())?;
            if let Some(w) = window {
                q.window.size = w;
            }
            if let Some(s) = slide {
                q.window.slide = s;
            }
            Ok(q)
        }
    }
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Explain(a) => explain(a),
        Command::Gen(a) => generate(a),
        Command::Run(a) => execute(a),
    }
}

fn explain(a: ExplainArgs) -> Result<(), String> {
    let query = load_query(&a.query, a.window, a.slide)?;
    println!("# program\n{}", query.program.display());
    let canonical = plan_canonical(&query);
    if !a.plans {
        println!("# canonical SGA plan\n{}", canonical.display());
        return Ok(());
    }
    for (i, plan) in rewrite::enumerate_plans(&canonical, 8).iter().enumerate() {
        println!(
            "# plan {i}{} — {} operators, {} stateful\n{}",
            if i == 0 { " (canonical)" } else { "" },
            plan.expr.size(),
            plan.expr.stateful_ops(),
            plan.display()
        );
    }
    Ok(())
}

fn generate(a: GenArgs) -> Result<(), String> {
    let vertices = if a.vertices == 0 {
        (a.edges as u64 / 8).max(10)
    } else {
        a.vertices
    };
    let raw: RawStream = match a.dataset.as_str() {
        "so" => datagen::so_stream(&SoConfig::new(vertices, a.edges).with_seed(a.seed)),
        "snb" => datagen::snb_stream(&SnbConfig::new(vertices, a.edges).with_seed(a.seed)),
        other => return Err(format!("unknown dataset `{other}` (so|snb)")),
    };
    let f = std::fs::File::create(&a.out)
        .map_err(|e| format!("cannot create {}: {e}", a.out.display()))?;
    stream_io::write_stream(&raw, f).map_err(|e| e.to_string())?;
    println!(
        "wrote {} edges ({} vertices, {} dataset) to {}",
        raw.len(),
        vertices,
        a.dataset,
        a.out.display()
    );
    Ok(())
}

fn execute(a: RunArgs) -> Result<(), String> {
    let mut query = load_query(&a.query, a.window, a.slide)?;
    for (label, size, slide) in &a.label_windows {
        query = query.with_label_window(label, WindowSpec::new(*size, *slide));
    }
    let raw = stream_io::read_stream_file(&a.stream).map_err(|e| e.to_string())?;
    let stream = resolve(&raw, query.program.labels());
    let skipped = raw.len() - stream.len();

    let opts = EngineOptions {
        path_impl: a.path_impl,
        pattern_impl: a.pattern_impl,
        materialize_paths: a.paths,
        ..Default::default()
    };

    let plan: Plan = match (a.plan, a.optimize) {
        (Some(n), _) => {
            let canonical = plan_canonical(&query);
            let plans = rewrite::enumerate_plans(&canonical, n.max(1) + 1);
            plans.into_iter().nth(n).ok_or(format!(
                "plan index {n} out of range (see `sgq explain --plans`)"
            ))?
        }
        (None, true) => {
            let canonical = plan_canonical(&query);
            let plans = rewrite::enumerate_plans(&canonical, 8);
            // Calibrate on a prefix of the stream (up to 2000 events).
            let prefix = s_graffito::types::InputStream::from_ordered(
                stream.sges().iter().take(2000).copied().collect(),
            );
            let cal = optimizer::choose_plan(&plans, &prefix, opts);
            eprintln!("# calibration chose plan {} of {}", cal.best, plans.len());
            plans.into_iter().nth(cal.best).expect("best in range")
        }
        (None, false) => plan_canonical(&query),
    };

    let mut engine = Engine::from_plan_with(&plan, opts);
    let labels = engine.labels().clone();
    let started = std::time::Instant::now();
    let mut emitted = 0u64;
    let edges = datagen::feed::feed(&stream, |sge| {
        let results = engine.process(sge);
        emitted += results.len() as u64;
        if !a.quiet {
            for r in results {
                let path = r
                    .payload
                    .as_path()
                    .map(|p| {
                        let hops: Vec<String> = p
                            .edges()
                            .iter()
                            .map(|e| format!("{}-{}->{}", e.src.0, labels.name(e.label), e.trg.0))
                            .collect();
                        format!("  via {}", hops.join(" "))
                    })
                    .unwrap_or_default();
                println!(
                    "{}\t{} -> {}\t[{}, {}){}",
                    labels.name(r.label),
                    r.src.0,
                    r.trg.0,
                    r.interval.ts,
                    r.interval.exp,
                    path
                );
            }
        }
    });
    if let Some(t) = a.at {
        let mut answers: Vec<_> = engine.answer_at(t).into_iter().collect();
        answers.sort();
        println!("# answers valid at t={t}: {}", answers.len());
        for (s, trg) in answers {
            println!("@{t}\t{} -> {}", s.0, trg.0);
        }
    }
    if a.stats {
        let elapsed = started.elapsed();
        eprintln!("# edges processed : {edges} ({skipped} skipped: label not in query)");
        eprintln!("# results emitted : {emitted}");
        eprintln!("# elapsed         : {:.3} s", elapsed.as_secs_f64());
        eprintln!(
            "# throughput      : {:.0} edges/s",
            edges as f64 / elapsed.as_secs_f64().max(1e-9)
        );
        eprintln!("# operator state  : {} entries", engine.state_size());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Command, String> {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        Command::parse(&args)
    }

    #[test]
    fn parses_run() {
        let cmd = parse("run --query q.rq --stream s.tsv --window 100 --slide 5 --stats").unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.query, QuerySource::Datalog("q.rq".into()));
                assert_eq!(a.window, Some(100));
                assert_eq!(a.slide, Some(5));
                assert!(a.stats);
                assert!(!a.paths);
                assert_eq!(a.path_impl, PathImpl::Direct);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_impl_choices() {
        let cmd = parse("run --gcore q.gc --stream s.tsv --path-impl negative --pattern-impl wcoj")
            .unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.path_impl, PathImpl::NegativeTuple);
                assert_eq!(a.pattern_impl, PatternImpl::Wcoj);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_flags_and_subcommands() {
        assert!(parse("run --query q --stream s --bogus").is_err());
        assert!(parse("frobnicate").is_err());
        assert!(parse("").is_err());
        assert!(parse("run --stream s.tsv").is_err(), "missing query");
        assert!(parse("run --query a --gcore b --stream s").is_err());
        assert!(parse("run --query q --stream s --plan 1 --optimize").is_err());
        assert!(parse("run --query q --stream s --window ten").is_err());
    }

    #[test]
    fn parses_label_windows() {
        let cmd = parse(
            "run --query q.rq --stream s.tsv --label-window knows=24 --label-window purchase=720:24",
        )
        .unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(
                    a.label_windows,
                    vec![
                        ("knows".to_string(), 24, 1),
                        ("purchase".to_string(), 720, 24)
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("run --query q --stream s --label-window knows").is_err());
        assert!(parse("run --query q --stream s --label-window knows=0").is_err());
        assert!(parse("run --query q --stream s --label-window knows=24:x").is_err());
    }

    #[test]
    fn explain_and_gen_parse() {
        assert!(matches!(
            parse("explain --query q.rq --plans").unwrap(),
            Command::Explain(ExplainArgs { plans: true, .. })
        ));
        match parse("gen --dataset so --edges 100 --out x.tsv").unwrap() {
            Command::Gen(g) => {
                assert_eq!(g.dataset, "so");
                assert_eq!(g.edges, 100);
                assert_eq!(g.seed, 42);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn end_to_end_gen_explain_run() {
        let dir = std::env::temp_dir().join(format!("sgq_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let stream = dir.join("s.tsv");
        let qfile = dir.join("q.rq");
        std::fs::write(&qfile, "Ans(x, y) <- a2q+(x, y).").unwrap();

        // gen
        run(parse(&format!(
            "gen --dataset so --edges 200 --vertices 40 --out {}",
            stream.display()
        ))
        .unwrap())
        .unwrap();
        assert!(stream.exists());

        // explain
        run(parse(&format!("explain --query {} --plans", qfile.display())).unwrap()).unwrap();

        // run (quiet, with a snapshot query)
        run(parse(&format!(
            "run --query {} --stream {} --window 100 --slide 10 --quiet --stats --at 50",
            qfile.display(),
            stream.display()
        ))
        .unwrap())
        .unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }
}
