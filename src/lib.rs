//! # s-graffito — a streaming graph query processor
//!
//! A from-scratch Rust implementation of *"Evaluating Complex Queries on
//! Streaming Graphs"* (Pacaci, Bonifati, Özsu — ICDE 2022): the SGQ query
//! model, the Streaming Graph Algebra (SGA), non-blocking physical
//! operators (symmetric hash joins, the S-PATH Δ-PATH index and its
//! negative-tuple baseline), a push-based execution engine, a
//! Differential-Dataflow-style incremental baseline, and synthetic
//! workload generators reproducing the paper's evaluation.
//!
//! This umbrella crate re-exports the member crates; see each for details:
//!
//! * [`types`] — streaming graph data model (sgts, validity intervals,
//!   coalescing, snapshot graphs, materialized paths).
//! * [`automata`] — regular expressions over label alphabets, NFA/DFA.
//! * [`query`] — the Regular Query model, Datalog & G-CORE front ends,
//!   sliding windows, and the one-time oracle evaluator.
//! * [`core`] — SGA algebra, planner, transformation rules, physical
//!   operators, and the execution engine.
//! * [`dd`] — the Differential-Dataflow-style incremental baseline.
//! * [`datagen`] — StackOverflow/SNB-like stream generators and Q1–Q7.
//! * [`multiquery`] — the multi-query host: N persistent queries over one
//!   stream with cross-query shared-subplan execution.
//! * [`serve`] — the deployment layer: the `sgq-serve` TCP host, its
//!   length-prefixed frame protocol (`docs/PROTOCOL.md`), and a small
//!   synchronous client.
//!
//! ## Quick start
//!
//! ```
//! use s_graffito::prelude::*;
//!
//! let program = parse_program("Ans(x, y) <- follows+(x, y).").unwrap();
//! let query = SgqQuery::new(program, WindowSpec::sliding(24));
//! let mut engine = Engine::from_query(&query);
//! let follows = engine.labels().get("follows").unwrap();
//!
//! engine.process(Sge::raw(1, 2, follows, 0));
//! let results = engine.process(Sge::raw(2, 3, follows, 5));
//! assert!(results.iter().any(|r| r.src.0 == 1 && r.trg.0 == 3));
//! ```

pub use sgq_automata as automata;
pub use sgq_core as core;
pub use sgq_datagen as datagen;
pub use sgq_dd as dd;
pub use sgq_multiquery as multiquery;
pub use sgq_query as query;
pub use sgq_serve as serve;
pub use sgq_types as types;

/// The most common imports in one place.
pub mod prelude {
    pub use sgq_core::engine::{Engine, EngineOptions, PathImpl, PatternImpl};
    pub use sgq_core::obs::{JsonlTraceSink, MetricsSnapshot, ObsLevel, TraceEvent, TraceSink};
    pub use sgq_core::planner::{plan_canonical, Plan};
    pub use sgq_core::rewrite;
    pub use sgq_multiquery::{MultiQueryEngine, QueryId};
    pub use sgq_query::{parse_program, SgqQuery, WindowSpec};
    pub use sgq_types::{Interval, Label, Payload, Sge, Sgt, VertexId};
}
