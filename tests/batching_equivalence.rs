//! Batched-vs-tuple execution equivalence (property-based): feeding a
//! random stream through `process_batch` under **any** batch split —
//! including splits that straddle slide boundaries, and interleaved with
//! explicit deletions — must produce exactly the per-tuple results, for
//! both [`Engine`] and [`MultiQueryEngine`].
//!
//! "Exactly" is stated at the data model's granularity: result streams
//! carry set semantics (Def. 10–12), so two logs are equal iff their
//! per-pair coalesced validity coverage is equal (batched execution may
//! chunk the same coverage into fewer, wider emissions — e.g. one epoch's
//! worth of S-PATH improvements coalesces into a single tuple). The
//! instantaneous answer sets (`answer_at`) are additionally compared at
//! every probed timestamp.

use proptest::prelude::*;
use s_graffito::core::engine::DispatchMode;
use s_graffito::prelude::*;
use s_graffito::types::{IntervalSet, Sge, VertexId};
use std::collections::BTreeMap;

const WINDOW: u64 = 24;
const SLIDE: u64 = 6;
const SPAN: u64 = 72;

/// One raw stream event: insert or (sometimes) an explicit deletion of a
/// previously inserted edge.
#[derive(Debug, Clone, Copy)]
enum Event {
    Insert(u64, u64, u8, u64),
    /// Deletes the most recent not-yet-deleted insert (resolved when the
    /// event sequence is materialized).
    DeleteRecent,
}

fn events(max_len: usize, with_deletes: bool) -> impl Strategy<Value = Vec<Event>> {
    let insert = (0u64..12, 0u64..12, 0u8..3, 1u64..4)
        .prop_map(|(s, t, l, dt)| Event::Insert(s, t, l, dt))
        .boxed();
    let event = if with_deletes {
        // ~1 in 5 events deletes the most recent live insert.
        prop_oneof![
            insert.clone(),
            insert.clone(),
            insert.clone(),
            insert.clone(),
            Just(Event::DeleteRecent).boxed(),
        ]
        .boxed()
    } else {
        insert
    };
    prop::collection::vec(event, 1..max_len)
}

/// Materializes events into an ordered op sequence: `(sge, is_delete)`.
/// Timestamps accumulate the per-event increments, so streams span several
/// slide periods and batch splits land on boundaries regularly.
fn materialize(events: &[Event], labels: &[Label]) -> Vec<(Sge, bool)> {
    let mut t = 0u64;
    let mut live: Vec<Sge> = Vec::new();
    let mut out = Vec::new();
    for ev in events {
        match *ev {
            Event::Insert(s, tr, l, dt) => {
                t = (t + dt).min(SPAN);
                let sge = Sge::new(VertexId(s), VertexId(tr), labels[l as usize], t);
                live.push(sge);
                out.push((sge, false));
            }
            Event::DeleteRecent => {
                if let Some(sge) = live.pop() {
                    out.push((sge, true));
                }
            }
        }
    }
    out
}

/// The semantic content of a result log: per (src, trg), the coalesced
/// validity coverage.
fn coverage(results: &[Sgt]) -> BTreeMap<(u64, u64), Vec<Interval>> {
    let mut map: BTreeMap<(u64, u64), IntervalSet> = BTreeMap::new();
    for s in results {
        map.entry((s.src.0, s.trg.0))
            .or_default()
            .insert(s.interval);
    }
    map.into_iter()
        .map(|(k, set)| (k, set.intervals().to_vec()))
        .collect()
}

fn opts(with_deletes: bool) -> EngineOptions {
    EngineOptions {
        suppress_duplicates: !with_deletes,
        ..Default::default()
    }
}

fn opts_workers(with_deletes: bool, workers: usize) -> EngineOptions {
    EngineOptions {
        workers,
        ..opts(with_deletes)
    }
}

/// Drives `ops` per-tuple through a dedicated engine.
fn run_tuple(query: &SgqQuery, ops: &[(Sge, bool)], with_deletes: bool) -> Engine {
    let mut e = Engine::from_query_with(query, opts(with_deletes));
    for &(sge, del) in ops {
        if del {
            e.delete(sge);
        } else {
            e.process(sge);
        }
    }
    e
}

/// Drives `ops` through `process_batch`, splitting insert runs at the
/// given cut points (deletions are their own per-tuple calls, as in a real
/// deletion pipeline).
fn run_batched(
    query: &SgqQuery,
    ops: &[(Sge, bool)],
    cuts: &[usize],
    with_deletes: bool,
) -> Engine {
    run_batched_with(query, ops, cuts, opts(with_deletes))
}

/// `run_batched` with explicit engine options (the worker-count axis).
fn run_batched_with(
    query: &SgqQuery,
    ops: &[(Sge, bool)],
    cuts: &[usize],
    options: EngineOptions,
) -> Engine {
    let mut e = Engine::from_query_with(query, options);
    let mut batch: Vec<Sge> = Vec::new();
    for (i, &(sge, del)) in ops.iter().enumerate() {
        if del {
            e.process_batch(&batch);
            batch.clear();
            e.delete(sge);
            continue;
        }
        batch.push(sge);
        if cuts.contains(&i) {
            e.process_batch(&batch);
            batch.clear();
        }
    }
    e.process_batch(&batch);
    e
}

fn probe_times() -> Vec<u64> {
    (0..=SPAN + WINDOW).step_by(3).collect()
}

fn check_engines_equal(tuple: &Engine, batched: &Engine) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        coverage(tuple.results()),
        coverage(batched.results()),
        "insert coverage"
    );
    prop_assert_eq!(
        coverage(tuple.deleted_results()),
        coverage(batched.deleted_results()),
        "delete coverage"
    );
    for t in probe_times() {
        prop_assert_eq!(
            tuple.answer_at(t),
            batched.answer_at(t),
            "answers at t={}",
            t
        );
    }
    Ok(())
}

fn query(text: &str) -> SgqQuery {
    SgqQuery::new(parse_program(text).unwrap(), WindowSpec::new(WINDOW, SLIDE))
}

/// The tested plans cover every operator: WSCAN, PATTERN (join tree),
/// S-PATH (Kleene closure), and a composite.
const PLANS: [&str; 3] = [
    "Ans(x, y) <- a(x, z), b(z, y).",
    "Ans(x, y) <- a+(x, y).",
    "Ans(x, y) <- a+(x, m), b(m, y).",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_batched_equals_tuple_append_only(
        evs in events(60, false),
        cuts in prop::collection::vec(0usize..60, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PLANS[plan_idx]);
        let tuple = run_tuple(&q, &materialize(&evs, &label_vec(&q)), false);
        let batched = run_batched(&q, &materialize(&evs, &label_vec(&q)), &cuts, false);
        check_engines_equal(&tuple, &batched)?;
    }

    #[test]
    fn engine_batched_equals_tuple_with_deletions(
        evs in events(50, true),
        cuts in prop::collection::vec(0usize..50, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PLANS[plan_idx]);
        let tuple = run_tuple(&q, &materialize(&evs, &label_vec(&q)), true);
        let batched = run_batched(&q, &materialize(&evs, &label_vec(&q)), &cuts, true);
        check_engines_equal(&tuple, &batched)?;
    }

    #[test]
    fn multiquery_batched_equals_tuple(
        evs in events(50, false),
        cuts in prop::collection::vec(0usize..50, 0..8),
    ) {
        // All three plans hosted concurrently; batched host vs per-tuple host.
        let queries: Vec<SgqQuery> = PLANS.iter().map(|p| query(p)).collect();

        let mut tuple = MultiQueryEngine::new();
        let tuple_ids: Vec<QueryId> = queries.iter().map(|q| tuple.register(q)).collect();
        let mut batched = MultiQueryEngine::new();
        let batched_ids: Vec<QueryId> = queries.iter().map(|q| batched.register(q)).collect();

        // "c" is referenced by no plan: such events are discarded by both
        // hosts (unknown-label handling is part of the equivalence).
        let labels: Vec<Label> = ["a", "b", "c"]
            .iter()
            .map(|n| tuple.labels().get(n).unwrap_or(Label(u32::MAX)))
            .collect();
        let ops = materialize(&evs, &labels);
        for &(sge, _) in &ops {
            tuple.process(sge);
        }
        let mut batch: Vec<Sge> = Vec::new();
        for (i, &(sge, _)) in ops.iter().enumerate() {
            batch.push(sge);
            if cuts.contains(&i) {
                batched.process_batch(&batch);
                batch.clear();
            }
        }
        batched.process_batch(&batch);

        for (ti, bi) in tuple_ids.iter().zip(&batched_ids) {
            prop_assert_eq!(
                coverage(tuple.results(*ti)),
                coverage(batched.results(*bi)),
                "per-query coverage"
            );
            for t in probe_times() {
                prop_assert_eq!(
                    tuple.answer_at(*ti, t),
                    batched.answer_at(*bi, t),
                    "answers at t={}", t
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Parallel-epoch determinism: the level-scheduled executor must produce
// **bit-identical** result logs — not merely equal coverage — and
// identical deterministic ExecStats counters at every worker count. Two
// of the tested plans have multi-node levels (two WSCANs at level 0), so
// `workers = 4` genuinely exercises the worker-pool dispatch and its
// ascending-node-order merge.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_parallel_identical_append_only(
        evs in events(60, false),
        cuts in prop::collection::vec(0usize..60, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PLANS[plan_idx]);
        let ops = materialize(&evs, &label_vec(&q));
        let serial = run_batched_with(&q, &ops, &cuts, opts_workers(false, 1));
        let parallel = run_batched_with(&q, &ops, &cuts, opts_workers(false, 4));
        check_bit_identical(&serial, &parallel)?;
    }

    #[test]
    fn engine_parallel_identical_with_deletions(
        evs in events(50, true),
        cuts in prop::collection::vec(0usize..50, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PLANS[plan_idx]);
        let ops = materialize(&evs, &label_vec(&q));
        let serial = run_batched_with(&q, &ops, &cuts, opts_workers(true, 1));
        let parallel = run_batched_with(&q, &ops, &cuts, opts_workers(true, 4));
        check_bit_identical(&serial, &parallel)?;
    }

    #[test]
    fn multiquery_parallel_identical(
        evs in events(50, false),
        cuts in prop::collection::vec(0usize..50, 0..8),
    ) {
        let queries: Vec<SgqQuery> = PLANS.iter().map(|p| query(p)).collect();
        let mut serial = MultiQueryEngine::with_options(opts_workers(false, 1));
        let mut parallel = MultiQueryEngine::with_options(opts_workers(false, 4));
        // A third host driven through the drain-only ingestion path: no
        // `(QueryId, Sgt)` pair building, same per-query logs.
        let mut drained = MultiQueryEngine::with_options(opts_workers(false, 4));
        let serial_ids: Vec<QueryId> = queries.iter().map(|q| serial.register(q)).collect();
        let parallel_ids: Vec<QueryId> = queries.iter().map(|q| parallel.register(q)).collect();
        let drained_ids: Vec<QueryId> = queries.iter().map(|q| drained.register(q)).collect();

        let labels: Vec<Label> = ["a", "b", "c"]
            .iter()
            .map(|n| serial.labels().get(n).unwrap_or(Label(u32::MAX)))
            .collect();
        let ops = materialize(&evs, &labels);
        let mut batch: Vec<Sge> = Vec::new();
        let mut flush = |batch: &mut Vec<Sge>| {
            let from_process = serial.process_batch(batch);
            let from_parallel = parallel.process_batch(batch);
            drained.ingest_batch(batch);
            batch.clear();
            // The collected pairs are themselves deterministic.
            from_process == from_parallel
        };
        for (i, &(sge, _)) in ops.iter().enumerate() {
            batch.push(sge);
            if cuts.contains(&i) {
                prop_assert!(flush(&mut batch), "collected pairs diverged");
            }
        }
        prop_assert!(flush(&mut batch), "collected pairs diverged");

        for ((si, pi), di) in serial_ids.iter().zip(&parallel_ids).zip(&drained_ids) {
            prop_assert_eq!(serial.results(*si), parallel.results(*pi));
            prop_assert_eq!(serial.deleted_results(*si), parallel.deleted_results(*pi));
            prop_assert_eq!(serial.results(*si), drained.results(*di), "drain-only path");
            // Drain cursors see everything exactly once.
            prop_assert_eq!(drained.drain(*di).len(), drained.results(*di).len());
            prop_assert_eq!(drained.drain(*di).len(), 0);
        }
        prop_assert_eq!(
            serial.exec_stats().determinism_fingerprint(),
            parallel.exec_stats().determinism_fingerprint()
        );
        prop_assert_eq!(
            serial.exec_stats().determinism_fingerprint(),
            drained.exec_stats().determinism_fingerprint()
        );
    }
}

// ---------------------------------------------------------------------
// Bulk S-PATH expansion: the frontier-at-once epoch path (the default
// `DispatchMode::Epoch`) versus the per-tuple ablation baseline
// (`DispatchMode::Tuple`), on S-PATH-heavy plans mirroring the closure
// shapes of workload Q1/Q6/Q7 — pure transitive closure, closure joined
// into a pattern, and closure over a derived relation. Random batch
// splits straddle slide boundaries (timestamps span several slides) and
// interleave explicit deletions. The bulk path must (a) equal the
// per-tuple baseline at the data model's granularity, and (b) be
// bit-identical to itself across (shards, workers) ∈ {(1,1),(4,4)} and
// obs ∈ {Off, Timing}.
// ---------------------------------------------------------------------

const PATH_HEAVY_PLANS: [&str; 3] = [
    // Q1 shape: pure transitive closure.
    "Ans(x, y) <- a+(x, y).",
    // Q6 shape: closure joined with a two-hop pattern.
    "Ans(x, y) <- a+(x, y), b(x, m), c(m, y).",
    // Q7 shape: closure over a derived relation.
    "RL(x, y)  <- a+(x, y), b(x, m), c(m, y).
     Ans(x, m) <- RL+(x, y), c(m, y).",
];

fn opts_bulk(with_deletes: bool, shards: usize, workers: usize, obs: ObsLevel) -> EngineOptions {
    EngineOptions {
        dispatch: DispatchMode::Epoch,
        shards,
        workers,
        obs,
        ..opts(with_deletes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn spath_bulk_equals_tuple_append_only(
        evs in events(50, false),
        cuts in prop::collection::vec(0usize..50, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PATH_HEAVY_PLANS[plan_idx]);
        let ops = materialize(&evs, &label_vec(&q));
        let tuple = run_batched_with(&q, &ops, &cuts, EngineOptions {
            dispatch: DispatchMode::Tuple,
            ..opts(false)
        });
        let bulk = run_batched_with(&q, &ops, &cuts, opts_bulk(false, 1, 1, ObsLevel::Off));
        check_engines_equal(&tuple, &bulk)?;
    }

    #[test]
    fn spath_bulk_equals_tuple_with_deletions(
        evs in events(50, true),
        cuts in prop::collection::vec(0usize..50, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PATH_HEAVY_PLANS[plan_idx]);
        let ops = materialize(&evs, &label_vec(&q));
        let tuple = run_batched_with(&q, &ops, &cuts, EngineOptions {
            dispatch: DispatchMode::Tuple,
            ..opts(true)
        });
        let bulk = run_batched_with(&q, &ops, &cuts, opts_bulk(true, 1, 1, ObsLevel::Off));
        check_engines_equal(&tuple, &bulk)?;
    }

    #[test]
    fn spath_bulk_bit_identical_across_configs(
        evs in events(50, true),
        cuts in prop::collection::vec(0usize..50, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PATH_HEAVY_PLANS[plan_idx]);
        let ops = materialize(&evs, &label_vec(&q));
        let base = run_batched_with(&q, &ops, &cuts, opts_bulk(true, 1, 1, ObsLevel::Off));
        let sharded = run_batched_with(&q, &ops, &cuts, opts_bulk(true, 4, 4, ObsLevel::Off));
        let timed = run_batched_with(&q, &ops, &cuts, opts_bulk(true, 4, 4, ObsLevel::Timing));
        check_bit_identical(&base, &sharded)?;
        check_bit_identical(&base, &timed)?;
    }
}

/// Bit-identical engine comparison: result logs compare as `Vec<Sgt>`
/// equality (order included) and executor counters on the deterministic
/// fingerprint (emission counts, dispatch counts, schedule shape).
fn check_bit_identical(serial: &Engine, parallel: &Engine) -> Result<(), TestCaseError> {
    prop_assert_eq!(serial.results(), parallel.results(), "insert log");
    prop_assert_eq!(
        serial.deleted_results(),
        parallel.deleted_results(),
        "delete log"
    );
    prop_assert_eq!(
        serial.exec_stats().determinism_fingerprint(),
        parallel.exec_stats().determinism_fingerprint(),
        "executor counters"
    );
    Ok(())
}

/// The EDB labels `a`, `b`, `c` in `q`'s namespace (indexable by the
/// event's label ordinal).
fn label_vec(q: &SgqQuery) -> Vec<Label> {
    let labels = Engine::from_query(q).labels().clone();
    ["a", "b", "c"]
        .iter()
        .map(|n| labels.get(n).unwrap_or(Label(u32::MAX)))
        .collect()
}
