//! Adaptive execution determinism (property-based): sketch-driven shard
//! rebalancing must be invisible in the answer stream. Any label→shard
//! assignment is semantics-preserving by construction — the scheduler's
//! merge replay restores serial publish order regardless of grouping — so
//! these properties pin the strongest form of that contract: engines run
//! with `adaptive` on (sketch maintenance, epoch-boundary rebalancing)
//! and engines driven through **arbitrary explicit rebalance schedules**
//! produce **bit-identical** result logs and deterministic-fingerprint
//! counters versus the serial non-adaptive baseline, at every tested
//! `(shards, workers)` × [`ObsLevel`] configuration.
//!
//! A separate property checks the count-min sketch itself on adversarial
//! key distributions (sequential, strided, high-bit-only): estimates
//! never under-count and stay within the `⌈e/w·N⌉` additive bound.

use proptest::prelude::*;
use s_graffito::core::sketch::CmSketch;
use s_graffito::prelude::*;
use s_graffito::types::{FxHashMap, Sge, VertexId};

const WINDOW: u64 = 24;
const SLIDE: u64 = 6;
const SPAN: u64 = 72;

/// The `(shards, workers)` matrix from the serial baseline to the
/// pool-backed sharded configuration.
const CONFIGS: [(usize, usize); 2] = [(1, 1), (4, 4)];

/// Observability levels the adaptive runs are repeated under: `Timing`
/// feeds measured `shard_nanos` into the rebalancer (wall-clock driven
/// decisions), `Off` leaves it on the deterministic sketch-mass signal.
const OBS: [ObsLevel; 2] = [ObsLevel::Off, ObsLevel::Timing];

/// One raw stream event, Zipf-skewed towards label 0 so the sketch sees
/// genuinely imbalanced label mass and the rebalancer has something to
/// move.
fn events(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u8, u64)>> {
    // The label ordinal is drawn 0..12 and folded through a fixed skew
    // table: half the mass on label 0, a third on 1, the rest on 2.
    const SKEW: [u8; 12] = [0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2];
    prop::collection::vec(
        (0u64..12, 0u64..12, 0usize..12, 1u64..4).prop_map(|(s, t, l, dt)| (s, t, SKEW[l], dt)),
        1..max_len,
    )
}

/// Materializes events into ordered sges.
fn materialize(events: &[(u64, u64, u8, u64)], labels: &[Label]) -> Vec<Sge> {
    let mut t = 0u64;
    events
        .iter()
        .map(|&(s, tr, l, dt)| {
            t = (t + dt).min(SPAN);
            Sge::new(VertexId(s), VertexId(tr), labels[l as usize], t)
        })
        .collect()
}

fn opts(shards: usize, workers: usize, obs: ObsLevel, adaptive: bool) -> EngineOptions {
    EngineOptions {
        suppress_duplicates: true,
        shards,
        workers,
        obs,
        adaptive,
        ..Default::default()
    }
}

/// Drives `sges` through `process_batch`, splitting at the given cut
/// points, optionally forcing an explicit shard assignment at each
/// scheduled flush.
fn run_engine(
    query: &SgqQuery,
    sges: &[Sge],
    cuts: &[usize],
    options: EngineOptions,
    schedule: &[(usize, usize, usize, usize)],
    labels: &[Label],
) -> Engine {
    let mut e = Engine::from_query_with(query, options);
    let mut batch: Vec<Sge> = Vec::new();
    for (i, &sge) in sges.iter().enumerate() {
        batch.push(sge);
        if cuts.contains(&i) {
            e.process_batch(&batch);
            batch.clear();
            for &(at, s0, s1, s2) in schedule {
                if at == i {
                    let assign: FxHashMap<Label, usize> = labels
                        .iter()
                        .zip([s0, s1, s2])
                        .map(|(&l, s)| (l, s))
                        .collect();
                    e.set_shard_assignment(assign);
                }
            }
        }
    }
    e.process_batch(&batch);
    e
}

fn query(text: &str) -> SgqQuery {
    SgqQuery::new(parse_program(text).unwrap(), WindowSpec::new(WINDOW, SLIDE))
}

/// Multi-label plans so shard groups are non-trivial.
const PLANS: [&str; 3] = [
    "Ans(x, y) <- a(x, z), b(z, y).",
    "Ans(x, y) <- a+(x, y).",
    "Ans(x, y) <- a+(x, m), b(m, y).",
];

/// The EDB labels `a`, `b`, `c` in `q`'s namespace.
fn label_vec(q: &SgqQuery) -> Vec<Label> {
    let labels = Engine::from_query(q).labels().clone();
    ["a", "b", "c"]
        .iter()
        .map(|n| labels.get(n).unwrap_or(Label(u32::MAX)))
        .collect()
}

fn check_bit_identical(
    baseline: &Engine,
    other: &Engine,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        baseline.results(),
        other.results(),
        "insert log {}",
        context
    );
    prop_assert_eq!(
        baseline.deleted_results(),
        other.deleted_results(),
        "delete log {}",
        context
    );
    prop_assert_eq!(
        baseline.exec_stats().determinism_fingerprint(),
        other.exec_stats().determinism_fingerprint(),
        "executor counters {}",
        context
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Adaptive on, every `(shards, workers)` × obs level: bit-identical
    /// to the serial **non-adaptive** baseline — sketch maintenance and
    /// any rebalances it triggers are fingerprint-neutral.
    #[test]
    fn adaptive_identical_across_configs_and_obs(
        evs in events(60),
        cuts in prop::collection::vec(0usize..60, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PLANS[plan_idx]);
        let labels = label_vec(&q);
        let sges = materialize(&evs, &labels);
        let baseline = run_engine(
            &q, &sges, &cuts, opts(1, 1, ObsLevel::Off, false), &[], &labels,
        );
        for &(shards, workers) in &CONFIGS {
            for &obs in &OBS {
                let run = run_engine(
                    &q, &sges, &cuts, opts(shards, workers, obs, true), &[], &labels,
                );
                let context = format!("at ({shards},{workers}) obs {obs:?}");
                check_bit_identical(&baseline, &run, &context)?;
            }
        }
    }

    /// Arbitrary explicit rebalance schedules — random label→shard maps
    /// applied at random flush points — leave results and fingerprints
    /// bit-identical to the never-rebalanced baseline.
    #[test]
    fn any_rebalance_schedule_is_bit_identical(
        evs in events(60),
        cuts in prop::collection::vec(0usize..60, 1..8),
        plan_idx in 0usize..3,
        schedule in prop::collection::vec(
            (0usize..60, 0usize..4, 0usize..4, 0usize..4),
            1..4,
        ),
    ) {
        let q = query(PLANS[plan_idx]);
        let labels = label_vec(&q);
        let sges = materialize(&evs, &labels);
        let baseline = run_engine(
            &q, &sges, &cuts, opts(1, 1, ObsLevel::Off, false), &[], &labels,
        );
        for &(shards, workers) in &CONFIGS[1..] {
            for &obs in &OBS {
                let run = run_engine(
                    &q, &sges, &cuts, opts(shards, workers, obs, false),
                    &schedule, &labels,
                );
                let context = format!("rebalanced at ({shards},{workers}) obs {obs:?}");
                check_bit_identical(&baseline, &run, &context)?;
            }
        }
    }

    /// Count-min estimates on adversarial key distributions: never under
    /// the true count, and within the additive `⌈e/w·N⌉` bound (the
    /// shimmed proptest is deterministic, so this is not a flaky
    /// probabilistic assertion — a pass is a pass forever).
    #[test]
    fn cm_sketch_within_error_bound(
        updates in prop::collection::vec(
            (0usize..3, 0u64..48, 1u64..64),
            1..200,
        ),
    ) {
        let mut cm = CmSketch::default();
        let mut truth: FxHashMap<u64, u64> = FxHashMap::default();
        for &(class, k, by) in &updates {
            // Three adversarial key families: sequential small ids,
            // 2^32-strided (exercises high multiply bits), and high-bit
            // only (all low bits zero).
            let key = match class {
                0 => k,
                1 => k << 32,
                _ => k << 52,
            };
            cm.update(key, by);
            *truth.entry(key).or_default() += by;
        }
        let bound = cm.error_bound();
        for (&key, &count) in &truth {
            let est = cm.estimate(key);
            prop_assert!(est >= count, "under-count: {est} < {count}");
            prop_assert!(
                est <= count + bound,
                "estimate {est} exceeds {count} + bound {bound}"
            );
        }
        prop_assert_eq!(cm.total(), updates.iter().map(|u| u.2).sum::<u64>());
    }
}

/// Drift-aware replanning end to end: a host with `adaptive` on, fed a
/// stream whose label distribution flips mid-run, replans registered
/// queries (fresh `QueryId`s) without changing any answer already
/// delivered — and the replanned registrations keep answering correctly.
#[test]
fn replan_preserves_results_and_remaps_ids() {
    let q = query(PLANS[0]);
    let mut adaptive_host = MultiQueryEngine::with_options(EngineOptions {
        adaptive: true,
        ..Default::default()
    });
    let mut static_host = MultiQueryEngine::with_options(EngineOptions::default());
    let id_a = adaptive_host.register(&q);
    let id_s = static_host.register(&q);

    let labels = ["a", "b", "c"].map(|n| adaptive_host.labels().get(n).unwrap_or(Label(u32::MAX)));
    // Phase 1: all mass on label `a` (the baseline the first replan
    // check adopts). Phase 2: mass flips to `b` — total variation climbs
    // past the replan threshold and stays there.
    let mut sges: Vec<Sge> = Vec::new();
    for i in 0..80u64 {
        sges.push(Sge::raw(i % 8, (i + 1) % 8, labels[0], i / 8));
    }
    for i in 0..200u64 {
        sges.push(Sge::raw(i % 8, (i + 3) % 8, labels[1], 10 + i / 20));
    }

    let mut current_a = id_a;
    for chunk in sges.chunks(16) {
        adaptive_host.process_batch(chunk);
        static_host.process_batch(chunk);
        for (old, new) in adaptive_host.maybe_replan() {
            assert_eq!(old, current_a, "replan targets the live registration");
            current_a = new;
        }
    }
    assert_ne!(current_a, id_a, "drift this large must trigger a replan");

    // The replanned registration answers from the full current window
    // (catch-up replay), so its answer set must match the static host's
    // exactly. Exact log order is only pinned at fixed registration
    // points — catch-up replays the window as one epoch — so compare
    // sets, not sequences.
    let pairs = |results: &[Sgt]| -> s_graffito::types::FxHashSet<(u64, u64)> {
        results.iter().map(|s| (s.src.0, s.trg.0)).collect()
    };
    let adaptive_pairs = pairs(adaptive_host.results(current_a));
    assert!(!adaptive_pairs.is_empty());
    assert_eq!(adaptive_pairs, pairs(static_host.results(id_s)));
}
