//! Soundness of the §5.4 transformation rules: every plan produced by the
//! rewriter computes exactly the same streaming answers as the canonical
//! plan, on every query shape the rules apply to.

use s_graffito::datagen::{resolve, uniform_stream};
use s_graffito::prelude::*;
use s_graffito::types::FxHashSet;

fn check_plan_space(program_text: &str, labels: &[&'static str], seed: u64) -> usize {
    let program = parse_program(program_text).unwrap();
    let window = WindowSpec::sliding(15);
    let query = SgqQuery::new(program, window);
    let canonical = plan_canonical(&query);
    let plans = rewrite::enumerate_plans(&canonical, 24);
    assert!(!plans.is_empty());

    let raw = uniform_stream(labels, 8, 150, 75, seed);
    let stream = resolve(&raw, &canonical.labels);

    let mut reference: Option<Vec<FxHashSet<(VertexId, VertexId)>>> = None;
    for (i, plan) in plans.iter().enumerate() {
        let mut engine = Engine::from_plan(plan);
        engine.run(&stream);
        // Compare snapshots at several instants, not just the final one.
        let snaps: Vec<FxHashSet<(VertexId, VertexId)>> =
            (0..90).step_by(7).map(|t| engine.answer_at(t)).collect();
        match &reference {
            None => reference = Some(snaps),
            Some(r) => assert_eq!(
                r,
                &snaps,
                "plan {i} of `{program_text}` disagrees:\n{}",
                plan.display()
            ),
        }
    }
    plans.len()
}

#[test]
fn q2_plan_space_is_equivalent() {
    let n = check_plan_space("Ans(x, y) <- (a b*)(x, y).", &["a", "b"], 11);
    assert!(n >= 2, "Q2 must have the relationalized alternative");
}

#[test]
fn q3_plan_space_is_equivalent() {
    let n = check_plan_space("Ans(x, y) <- (a b* c*)(x, y).", &["a", "b", "c"], 12);
    assert!(n >= 2);
}

#[test]
fn q4_plan_space_is_equivalent() {
    // (a·b·c)+ over the rule form: canonical loop-caching plan plus the
    // P1/P2/P3 groupings of Figure 12.
    let n = check_plan_space(
        "T(x, y)   <- a(x, m1), b(m1, m2), c(m2, y).
         Ans(x, y) <- T+(x, y).",
        &["a", "b", "c"],
        13,
    );
    assert!(
        n >= 4,
        "Q4 exposes at least the 4 plans of Figure 12, got {n}"
    );
}

#[test]
fn q4_regex_form_plan_space_is_equivalent() {
    let n = check_plan_space("Ans(x, y) <- (a b c)+(x, y).", &["a", "b", "c"], 14);
    assert!(n >= 4);
}

#[test]
fn alternation_plan_space_is_equivalent() {
    let n = check_plan_space("Ans(x, y) <- (a|b)(x, y).", &["a", "b"], 15);
    assert!(n >= 2, "alternation rule must fire");
}

#[test]
fn alternation_under_plus_is_equivalent() {
    check_plan_space("Ans(x, y) <- (a|b)+(x, y).", &["a", "b"], 16);
}

#[test]
fn composite_query_plan_space_is_equivalent() {
    check_plan_space(
        "RL(x, y)  <- a+(x, y), b(x, m), c(m, y).
         Ans(x, m) <- RL+(x, y), c(m, y).",
        &["a", "b", "c"],
        17,
    );
}

#[test]
fn rewritten_plans_also_satisfy_reducibility() {
    // Spot-check one rewritten plan directly against the oracle.
    use s_graffito::query::oracle;
    use s_graffito::types::SnapshotGraph;

    let program = parse_program("Ans(x, y) <- (a b*)(x, y).").unwrap();
    let window = WindowSpec::sliding(10);
    let query = SgqQuery::new(program.clone(), window);
    let canonical = plan_canonical(&query);
    let plans = rewrite::enumerate_plans(&canonical, 8);
    let rewritten = plans.last().unwrap();

    let raw = uniform_stream(&["a", "b"], 6, 60, 30, 18);
    let stream = resolve(&raw, &rewritten.labels);
    let mut engine = Engine::from_plan(rewritten);
    let mut windowed = Vec::new();
    for sge in &stream {
        engine.process(*sge);
        windowed.push(Sgt::edge(
            sge.src,
            sge.trg,
            sge.label,
            window.interval_for(sge.t),
        ));
    }
    for t in 0..40 {
        let snap = SnapshotGraph::at_time(t, &windowed);
        assert_eq!(
            engine.answer_at(t),
            oracle::evaluate_answer(&program, &snap),
            "t={t}"
        );
    }
}
