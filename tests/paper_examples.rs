//! End-to-end reproduction of the paper's running examples: the input
//! stream of Figure 2, the windowed stream of Figure 3, the snapshot of
//! Figure 4, the PATTERN output of Example 6, the PATH output of
//! Example 7, and the Example 8 canonical plan executing the Example 1
//! notification query.

use s_graffito::prelude::*;
use s_graffito::query::oracle;
use s_graffito::types::SnapshotGraph;

// Figure 2 vertex encoding: u=0, v=1, b=2, y=3, c=4, a=5.
const U: u64 = 0;
const V: u64 = 1;
const B: u64 = 2;
const Y: u64 = 3;
const C: u64 = 4;
const A: u64 = 5;

fn figure2_stream(labels: &s_graffito::types::LabelInterner) -> Vec<Sge> {
    let f = labels.get("follows").unwrap();
    let p = labels.get("posts").unwrap();
    let l = labels.get("likes").unwrap();
    vec![
        Sge::raw(U, V, f, 7),
        Sge::raw(V, B, p, 10),
        Sge::raw(Y, U, f, 13),
        Sge::raw(V, C, p, 17),
        Sge::raw(U, A, p, 22),
        Sge::raw(Y, A, l, 28),
        Sge::raw(U, B, l, 29),
        Sge::raw(U, C, l, 30),
    ]
}

fn example_program() -> s_graffito::query::RqProgram {
    parse_program(
        "RL(u1, u2)   <- likes(u1, m1), follows+(u1, u2), posts(u2, m1).
         Notify(u, m) <- RL+(u, v), posts(v, m).
         Answer(u, m) <- Notify(u, m).",
    )
    .unwrap()
}

#[test]
fn figure3_wscan_intervals() {
    // The 24h WSCAN assigns [7,31), [10,34), … (Figure 3).
    let w = WindowSpec::sliding(24);
    assert_eq!(w.interval_for(7), Interval::new(7, 31));
    assert_eq!(w.interval_for(10), Interval::new(10, 34));
    assert_eq!(w.interval_for(13), Interval::new(13, 37));
    assert_eq!(w.interval_for(17), Interval::new(17, 41));
    assert_eq!(w.interval_for(22), Interval::new(22, 46));
    assert_eq!(w.interval_for(28), Interval::new(28, 52));
    assert_eq!(w.interval_for(29), Interval::new(29, 53));
    assert_eq!(w.interval_for(30), Interval::new(30, 54));
}

#[test]
fn figure4_snapshot_at_25() {
    // The snapshot graph at t=25 holds the first five edges only.
    let program = example_program();
    let w = WindowSpec::sliding(24);
    let tuples: Vec<Sgt> = figure2_stream(program.labels())
        .iter()
        .map(|s| Sgt::edge(s.src, s.trg, s.label, w.interval_for(s.t)))
        .collect();
    let g = SnapshotGraph::at_time(25, &tuples);
    assert_eq!(g.edge_count(), 5);
    assert_eq!(g.vertex_count(), 6); // u, v, b, y, c, a
}

#[test]
fn example6_pattern_output() {
    // The recentLiker PATTERN produces exactly (y,RL,u)@[28,37) and
    // (u,RL,v)@[29,31) (after coalescing the two (u,v) derivations).
    let program =
        parse_program("RL(u1, u2) <- likes(u1, m1), follows+(u1, u2), posts(u2, m1).").unwrap();
    let query = SgqQuery::new(program, WindowSpec::sliding(24));
    let mut engine = Engine::from_query(&query);
    let mut results = Vec::new();
    for sge in figure2_stream(&engine.labels().clone()) {
        results.extend(engine.process(sge));
    }
    let simple: Vec<(u64, u64, Interval)> = results
        .iter()
        .map(|r| (r.src.0, r.trg.0, r.interval))
        .collect();
    assert_eq!(simple.len(), 2, "{simple:?}");
    assert!(simple.contains(&(Y, U, Interval::new(28, 37))));
    assert!(simple.contains(&(U, V, Interval::new(29, 31))));
}

#[test]
fn example7_path_output_with_materialized_paths() {
    // PATH over the derived RL edges yields (y,u)@[28,37), (u,v)@[29,31)
    // and the two-hop (y,v)@[29,31) whose payload is ⟨(y,RL,u),(u,RL,v)⟩.
    let program = parse_program(
        "RL(u1, u2) <- likes(u1, m1), follows+(u1, u2), posts(u2, m1).
         Ans(x, y)  <- RL+(x, y).",
    )
    .unwrap();
    let query = SgqQuery::new(program, WindowSpec::sliding(24));
    let mut engine = Engine::from_query(&query);
    let mut results = Vec::new();
    for sge in figure2_stream(&engine.labels().clone()) {
        results.extend(engine.process(sge));
    }
    let find = |s: u64, t: u64| {
        results
            .iter()
            .find(|r| r.src.0 == s && r.trg.0 == t)
            .unwrap_or_else(|| panic!("missing result ({s},{t})"))
    };
    assert_eq!(find(Y, U).interval, Interval::new(28, 37));
    assert_eq!(find(U, V).interval, Interval::new(29, 31));
    let yv = find(Y, V);
    assert_eq!(yv.interval, Interval::new(29, 31));
    match &yv.payload {
        Payload::Path(p) => {
            assert_eq!(p.len(), 2);
            assert_eq!(p.vertices(), vec![VertexId(Y), VertexId(U), VertexId(V)]);
            // Path elements are the *derived* RL edges (labels disjoint
            // from input labels, Def. 6).
            let rl = engine.labels().get("RL").unwrap();
            assert!(p.edges().iter().all(|e| e.label == rl));
        }
        other => panic!("expected materialized path, got {other:?}"),
    }
}

#[test]
fn example8_canonical_plan_shape_and_execution() {
    let program = example_program();
    let query = SgqQuery::new(program.clone(), WindowSpec::sliding(24));
    let plan = plan_canonical(&query);
    let text = plan.display();
    // Figure 8 (left): PATTERN over (PATH_{RL+} over PATTERN(likes, FP, posts))
    // and posts, with three WSCAN leaves.
    assert_eq!(text.matches("WSCAN").count(), 4, "{text}"); // posts appears twice (shared after dedup in engine)
    assert!(text.contains("PATH"));
    assert!(text.matches("PATTERN").count() >= 2, "{text}");

    // Executing it matches the one-time oracle at all instants (Def. 15).
    let mut engine = Engine::from_plan(&plan);
    let stream = figure2_stream(&plan.labels);
    let w = WindowSpec::sliding(24);
    let mut windowed = Vec::new();
    for sge in stream {
        engine.process(sge);
        windowed.push(Sgt::edge(
            sge.src,
            sge.trg,
            sge.label,
            w.interval_for(sge.t),
        ));
    }
    for t in [24, 28, 29, 30, 31, 36, 40, 52] {
        let snap = SnapshotGraph::at_time(t, &windowed);
        assert_eq!(
            engine.answer_at(t),
            oracle::evaluate_answer(&program, &snap),
            "t={t}"
        );
    }
    // The paper's concrete expectation: at t=30 the notifications include
    // (y,a) and (u,b),(u,c),(y,b),(y,c).
    let at30 = engine.answer_at(30);
    assert!(at30.contains(&(VertexId(Y), VertexId(A))));
    assert!(at30.contains(&(VertexId(U), VertexId(B))));
    assert!(at30.contains(&(VertexId(U), VertexId(C))));
    assert!(at30.contains(&(VertexId(Y), VertexId(B))));
    assert!(at30.contains(&(VertexId(Y), VertexId(C))));
}

#[test]
fn example2_rq_is_the_example1_gcore_query() {
    // The Datalog text of Example 2 validates with the right EDB/IDB split
    // and the Answer predicate.
    let p = example_program();
    let names: Vec<&str> = p.edb_labels().iter().map(|&l| p.labels().name(l)).collect();
    assert_eq!(names, vec!["likes", "follows", "posts"]);
    assert_eq!(p.labels().name(p.answer()), "Answer");
    assert_eq!(p.rules().len(), 3);
}
