//! Cross-engine equivalence: the SGA engine (both PATH implementations)
//! and the DD-style baseline must compute identical answers on the actual
//! evaluation workloads (Q1–Q7 over SO-like and SNB-like streams).

use s_graffito::datagen::{resolve, snb_stream, so_stream, workloads, SnbConfig, SoConfig};
use s_graffito::dd::DdEngine;
use s_graffito::prelude::*;
use s_graffito::types::FxHashSet;
use workloads::Dataset;

fn answers_sga(
    program: &s_graffito::query::RqProgram,
    window: WindowSpec,
    stream: &s_graffito::types::InputStream,
    at: u64,
    opts: EngineOptions,
) -> FxHashSet<(VertexId, VertexId)> {
    let query = SgqQuery::new(program.clone(), window);
    let mut engine = Engine::from_query_with(&query, opts);
    engine.run(stream);
    engine.advance_time(at); // drive pending window movements
    engine.answer_at(at)
}

fn answers_dd(
    program: &s_graffito::query::RqProgram,
    window: WindowSpec,
    stream: &s_graffito::types::InputStream,
    at: u64,
) -> FxHashSet<(VertexId, VertexId)> {
    let query = SgqQuery::new(program.clone(), window);
    let mut dd = DdEngine::new(&query);
    for sge in stream {
        dd.process(*sge);
    }
    dd.flush_to(at);
    dd.answer_at(at)
}

fn check_dataset(ds: Dataset, stream_raw: &s_graffito::datagen::RawStream, span: u64) {
    // β-aligned window so all engines' epoch semantics coincide.
    let window = WindowSpec::new(span / 2, span / 10);
    // Compare at the last closed epoch boundary.
    let at = (span / (span / 10)) * (span / 10);
    for (name, program) in workloads::all_queries(ds) {
        let stream = resolve(stream_raw, program.labels());
        let a = answers_sga(&program, window, &stream, at, EngineOptions::default());
        let b = answers_sga(
            &program,
            window,
            &stream,
            at,
            EngineOptions {
                path_impl: PathImpl::NegativeTuple,
                ..Default::default()
            },
        );
        let c = answers_dd(&program, window, &stream, at);
        assert_eq!(a, b, "{} {name}: S-PATH vs negative-tuple PATH", ds.name());
        assert_eq!(a, c, "{} {name}: SGA vs DD", ds.name());
    }
}

#[test]
fn all_queries_agree_on_so_like_stream() {
    let raw = so_stream(&SoConfig::new(40, 600).with_span(300));
    check_dataset(Dataset::So, &raw, 300);
}

#[test]
fn all_queries_agree_on_snb_like_stream() {
    let raw = snb_stream(&SnbConfig::new(30, 600).with_span(300));
    check_dataset(Dataset::Snb, &raw, 300);
}

#[test]
fn per_stream_windows_agree_across_engines() {
    // Figure 7's individually-windowed streams: SGA and DD must agree
    // when one label's window is much shorter than the other's.
    let raw = snb_stream(&SnbConfig::new(30, 800).with_span(400));
    let program =
        s_graffito::query::parse_program("Ans(x, y) <- knows(x, m), likes(m, y).").unwrap();
    let stream = resolve(&raw, program.labels());
    let mk_query = || {
        SgqQuery::new(program.clone(), WindowSpec::new(200, 40))
            .with_label_window("knows", WindowSpec::new(40, 40))
    };
    let at = 360;
    let mut sga = Engine::from_query(&mk_query());
    sga.run(&stream);
    sga.advance_time(at);
    let mut dd = DdEngine::new(&mk_query());
    for sge in &stream {
        dd.process(*sge);
    }
    dd.flush_to(at);
    assert_eq!(sga.answer_at(at), dd.answer_at(at));
    // And against the oracle over per-label-windowed tuples.
    let q = mk_query();
    let windowed: Vec<s_graffito::types::Sgt> = stream
        .sges()
        .iter()
        .map(|s| {
            s_graffito::types::Sgt::edge(
                s.src,
                s.trg,
                s.label,
                q.window_for(s.label).interval_for(s.t),
            )
        })
        .collect();
    let snap = s_graffito::types::SnapshotGraph::at_time(at, &windowed);
    let expect = s_graffito::query::oracle::evaluate_answer(&program, &snap);
    assert_eq!(sga.answer_at(at), expect, "SGA vs oracle");
}

#[test]
fn results_are_nonempty_for_every_workload_query() {
    // Guard against vacuous agreement: at full-stream scale every Qn must
    // actually produce answers on its dataset.
    let so = so_stream(&SoConfig::new(30, 2_000).with_span(400));
    let snb = snb_stream(&SnbConfig::new(25, 2_000).with_span(400));
    for (ds, raw) in [(Dataset::So, &so), (Dataset::Snb, &snb)] {
        for (name, program) in workloads::all_queries(ds) {
            let stream = resolve(raw, program.labels());
            let query = SgqQuery::new(program, WindowSpec::new(200, 40));
            let mut engine = Engine::from_query(&query);
            engine.run(&stream);
            assert!(
                !engine.results().is_empty(),
                "{} {name} produced no results — workload too sparse",
                ds.name()
            );
        }
    }
}
