//! Failure-injection and adversarial-input tests: malformed retractions,
//! duplicate storms, degenerate windows, and clock edge cases. The engine
//! must stay consistent (never panic, never fabricate results) under
//! inputs that violate the "happy path" the paper's experiments exercise.

use s_graffito::prelude::*;
use s_graffito::query::oracle;
use s_graffito::types::{PropMap, ReorderBuffer, SnapshotGraph};

fn deletion_engine(text: &str, window: u64) -> Engine {
    let p = parse_program(text).unwrap();
    Engine::from_query_with(
        &SgqQuery::new(p, WindowSpec::sliding(window)),
        EngineOptions {
            suppress_duplicates: false,
            ..Default::default()
        },
    )
}

#[test]
fn deleting_a_tuple_that_was_never_inserted_is_harmless() {
    for text in ["Ans(x, y) <- a(x, z), b(z, y).", "Ans(x, y) <- a+(x, y)."] {
        let mut e = deletion_engine(text, 50);
        let a = e.labels().get("a").unwrap();
        e.process(Sge::raw(1, 2, a, 0));
        let out = e.delete(Sge::raw(7, 8, a, 0)); // never inserted
        assert!(out.is_empty(), "{text}: spurious retractions {out:?}");
        assert_eq!(e.answer_at(1).len(), if text.contains('+') { 1 } else { 0 });
    }
}

#[test]
fn double_deletion_does_not_over_retract() {
    let mut e = deletion_engine("Ans(x, y) <- a(x, z), b(z, y).", 100);
    let a = e.labels().get("a").unwrap();
    let b = e.labels().get("b").unwrap();
    e.process(Sge::raw(1, 2, a, 0));
    e.process(Sge::raw(2, 3, b, 1));
    assert_eq!(e.answer_at(2).len(), 1);
    e.delete(Sge::raw(1, 2, a, 0));
    assert!(e.answer_at(2).is_empty());
    // Second deletion of the same edge: state is already gone; the engine
    // must not fabricate another retraction of a live result.
    let before = e.deleted_results().len();
    e.delete(Sge::raw(1, 2, a, 0));
    // Either zero or a no-op retraction of an already-dead pair is fine,
    // but the net answer must not change and nothing may panic.
    assert!(e.answer_at(2).is_empty());
    assert!(e.deleted_results().len() <= before + 1);
}

#[test]
fn deletion_after_expiry_is_a_noop() {
    let mut e = deletion_engine("Ans(x, y) <- a(x, z), b(z, y).", 10);
    let a = e.labels().get("a").unwrap();
    let b = e.labels().get("b").unwrap();
    e.process(Sge::raw(1, 2, a, 0));
    e.process(Sge::raw(2, 3, b, 1));
    // Move far past the window; the join pair is long expired.
    e.advance_time(100);
    let out = e.delete(Sge::raw(1, 2, a, 0));
    // The retraction targets an interval that no live result overlaps.
    for r in &out {
        assert!(r.interval.exp <= 11, "retraction of live data: {r:?}");
    }
    assert!(e.answer_at(100).is_empty());
}

#[test]
fn duplicate_storm_keeps_state_bounded() {
    // 500 re-insertions of the same edge must coalesce, not accumulate.
    let p = parse_program("Ans(x, y) <- a(x, z), a(z, y).").unwrap();
    let q = SgqQuery::new(p, WindowSpec::sliding(1000));
    let mut e = Engine::from_query(&q);
    let a = e.labels().get("a").unwrap();
    for i in 0..500u64 {
        e.process(Sge::raw(1, 2, a, i / 100)); // slowly advancing clock
    }
    assert!(
        e.state_size() <= 4,
        "coalescing failed: {} state entries",
        e.state_size()
    );
}

#[test]
fn empty_window_spec_tuples_can_miss_windows() {
    // β > T (Def. 16 corner): tuples arriving late in a slide period get
    // empty validity and must be dropped everywhere, producing no results.
    let p = parse_program("Ans(x, y) <- a(x, z), b(z, y).").unwrap();
    let q = SgqQuery::new(p, WindowSpec::new(2, 10)); // T=2, β=10
    let mut e = Engine::from_query(&q);
    let a = e.labels().get("a").unwrap();
    let b = e.labels().get("b").unwrap();
    e.process(Sge::raw(1, 2, a, 0)); // [0, 2): visible
    let out = e.process(Sge::raw(2, 3, b, 5)); // arrives ≥ T into the slide: dropped
    assert!(out.is_empty());
    // Within-window pair in the next slide period works.
    e.process(Sge::raw(4, 5, a, 10));
    let out = e.process(Sge::raw(5, 6, b, 11));
    assert_eq!(out.len(), 1);
}

#[test]
fn large_timestamp_jumps_cross_many_boundaries() {
    let p = parse_program("Ans(x, y) <- a+(x, y).").unwrap();
    let q = SgqQuery::new(p, WindowSpec::new(20, 1));
    let mut e = Engine::from_query(&q);
    let a = e.labels().get("a").unwrap();
    e.process(Sge::raw(1, 2, a, 0));
    // Jump 100k ticks in one step: every crossed boundary is handled.
    let out = e.process(Sge::raw(2, 3, a, 100_000));
    assert_eq!(out.len(), 1, "only the fresh edge remains");
    assert!(e.answer_at(100_000).contains(&(VertexId(2), VertexId(3))));
    assert!(!e.answer_at(100_000).contains(&(VertexId(1), VertexId(3))));
}

#[test]
fn reorder_buffer_repairs_out_of_order_sources() {
    // The engine requires ordered streams (Def. 4); the reorder buffer is
    // the ingestion-side fix for slightly-disordered sources.
    let p = parse_program("Ans(x, y) <- a(x, z), b(z, y).").unwrap();
    let q = SgqQuery::new(p, WindowSpec::sliding(50));
    let mut e = Engine::from_query(&q);
    let a = e.labels().get("a").unwrap();
    let b = e.labels().get("b").unwrap();
    let mut buf = ReorderBuffer::new(10); // tolerate 10 ticks of disorder
    let disordered = [
        Sge::raw(2, 3, b, 5),
        Sge::raw(1, 2, a, 2), // late by 3 ticks
        Sge::raw(4, 5, a, 14),
        Sge::raw(5, 6, b, 12), // late by 2
        Sge::raw(9, 9, a, 40),
    ];
    let mut results = Vec::new();
    for sge in disordered {
        let released = buf.push(sge);
        assert!(!released.dropped, "slack too small for test fixture");
        for ready in released.ready {
            results.extend(e.process(ready));
        }
    }
    for released in buf.flush() {
        results.extend(e.process(released));
    }
    let pairs: Vec<(u64, u64)> = results.iter().map(|r| (r.src.0, r.trg.0)).collect();
    assert!(pairs.contains(&(1, 3)), "{pairs:?}");
    assert!(pairs.contains(&(4, 6)), "{pairs:?}");
}

#[test]
fn prop_deletion_with_mismatched_props_does_not_retract() {
    // A retraction whose properties fail the filter never passes the
    // ingestion FILTER, so it cannot cancel a result whose insertion did.
    let p = parse_program("Ans(x, y) <- a(x, m)[w > 0], b(m, y).").unwrap();
    let q = SgqQuery::new(p, WindowSpec::sliding(100));
    let mut e = Engine::from_query_with(
        &q,
        EngineOptions {
            suppress_duplicates: false,
            ..Default::default()
        },
    );
    let a = e.labels().get("a").unwrap();
    let b = e.labels().get("b").unwrap();
    e.process_with_props(Sge::raw(1, 2, a, 0), PropMap::from_pairs([("w", 5i64)]));
    e.process(Sge::raw(2, 3, b, 1));
    assert_eq!(e.answer_at(2).len(), 1);
    // Wrong props on the retraction: filtered out, answer unchanged.
    e.delete_with_props(Sge::raw(1, 2, a, 0), PropMap::from_pairs([("w", 0i64)]));
    assert_eq!(e.answer_at(2).len(), 1);
    // Matching props cancel.
    e.delete_with_props(Sge::raw(1, 2, a, 0), PropMap::from_pairs([("w", 5i64)]));
    assert!(e.answer_at(2).is_empty());
}

#[test]
fn negpath_deletion_with_alternative_path_keeps_answer() {
    // Deleting one of two parallel derivations must not retract the pair
    // while the alternative is live (DRed-style re-derivation, §6.2.5).
    let p = parse_program("Ans(x, y) <- a+(x, y).").unwrap();
    let q = SgqQuery::new(p, WindowSpec::sliding(100));
    let mut e = Engine::from_query_with(
        &q,
        EngineOptions {
            suppress_duplicates: false,
            path_impl: PathImpl::NegativeTuple,
            ..Default::default()
        },
    );
    let a = e.labels().get("a").unwrap();
    e.process(Sge::raw(1, 2, a, 0));
    e.process(Sge::raw(2, 4, a, 1));
    e.process(Sge::raw(1, 3, a, 2));
    e.process(Sge::raw(3, 4, a, 3));
    assert!(e.answer_at(4).contains(&(VertexId(1), VertexId(4))));
    // Kill the 1→2→4 route; 1→3→4 still stands.
    e.delete(Sge::raw(1, 2, a, 0));
    assert!(
        e.answer_at(4).contains(&(VertexId(1), VertexId(4))),
        "alternative derivation lost"
    );
    assert!(!e.answer_at(4).contains(&(VertexId(1), VertexId(2))));
    // Kill the second route too.
    e.delete(Sge::raw(3, 4, a, 3));
    assert!(!e.answer_at(4).contains(&(VertexId(1), VertexId(4))));
}

#[test]
fn oracle_agrees_after_mixed_inserts_and_deletes() {
    // Deterministic insert/delete interleaving checked against the oracle
    // over the surviving tuple set at several instants.
    let text = "Ans(x, y) <- a(x, z), b(z, y).";
    let program = parse_program(text).unwrap();
    let window = WindowSpec::sliding(30);
    let mut e = Engine::from_query_with(
        &SgqQuery::new(program.clone(), window),
        EngineOptions {
            suppress_duplicates: false,
            ..Default::default()
        },
    );
    let a = e.labels().get("a").unwrap();
    let b = e.labels().get("b").unwrap();
    let mut live: Vec<Sge> = Vec::new();
    for i in 0..60u64 {
        let s = i % 5;
        let t = (i + 1) % 5;
        let label = if i % 2 == 0 { a } else { b };
        let sge = Sge::raw(s, t, label, i);
        e.process(sge);
        live.push(sge);
        if i % 7 == 3 {
            // Delete the median live edge.
            let victim = live.remove(live.len() / 2);
            e.delete(victim);
        }
    }
    for t in [10u64, 25, 40, 59, 80] {
        let windowed: Vec<Sgt> = live
            .iter()
            .map(|s| Sgt::edge(s.src, s.trg, s.label, window.interval_for(s.t)))
            .collect();
        let snap = SnapshotGraph::at_time(t, &windowed);
        let expect = oracle::evaluate_answer(&program, &snap);
        assert_eq!(e.answer_at(t), expect, "t={t}");
    }
}

use s_graffito::types::{Sgt, VertexId};
