//! Property-based tests (proptest) on the core invariants: interval
//! algebra, coalescing state, regex→DFA equivalence, and full-engine
//! snapshot reducibility on randomized streams.

use proptest::prelude::*;
use s_graffito::automata::{Dfa, Nfa, Regex};
use s_graffito::prelude::*;
use s_graffito::query::oracle;
use s_graffito::types::{IntervalSet, Label, SnapshotGraph};

// ---------------------------------------------------------------------
// Interval algebra
// ---------------------------------------------------------------------

fn interval() -> impl Strategy<Value = Interval> {
    (0u64..60, 1u64..30).prop_map(|(ts, len)| Interval::new(ts, ts + len))
}

proptest! {
    #[test]
    fn intersect_is_commutative(a in interval(), b in interval()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn intersect_agrees_with_pointwise(a in interval(), b in interval(), t in 0u64..100) {
        let i = a.intersect(&b);
        prop_assert_eq!(i.contains(t), a.contains(t) && b.contains(t));
    }

    #[test]
    fn hull_contains_both(a in interval(), b in interval()) {
        let h = a.hull(&b);
        for t in 0..100u64 {
            if a.contains(t) || b.contains(t) {
                prop_assert!(h.contains(t));
            }
        }
    }

    #[test]
    fn meets_iff_hull_adds_no_gap(a in interval(), b in interval()) {
        // When two intervals meet, their hull covers exactly their union.
        prop_assume!(a.meets(&b));
        let h = a.hull(&b);
        for t in 0..100u64 {
            prop_assert_eq!(h.contains(t), a.contains(t) || b.contains(t));
        }
    }

    #[test]
    fn window_interval_contains_its_timestamp(t in 0u64..1000, w in 1u64..100, s in 1u64..20) {
        let iv = s_graffito::types::time::window_interval(t, w, s);
        // With β ≤ T every tuple is visible for at least one instant; with
        // β > T a tuple arriving ≥ T into its slide period misses the
        // window entirely (empty interval) — both per Def. 16.
        if s <= w {
            prop_assert!(iv.contains(t));
        } else {
            prop_assert_eq!(iv.contains(t), t % s < w);
        }
        // Expiry is aligned: exp - T is a multiple of the slide.
        prop_assert_eq!((iv.exp - w) % s, 0);
    }
}

// ---------------------------------------------------------------------
// IntervalSet vs a naive instant-set model
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn interval_set_matches_instant_model(ops in prop::collection::vec(interval(), 1..20)) {
        let mut set = IntervalSet::new();
        let mut model = std::collections::BTreeSet::new();
        for iv in &ops {
            set.insert(*iv);
            for t in iv.ts..iv.exp {
                model.insert(t);
            }
        }
        for t in 0..100u64 {
            prop_assert_eq!(set.contains(t), model.contains(&t), "t={}", t);
        }
        prop_assert_eq!(set.covered(), model.len() as u64);
        // Normal form: members are disjoint, non-adjacent, sorted.
        for w in set.intervals().windows(2) {
            prop_assert!(w[0].exp < w[1].ts);
        }
    }

    #[test]
    fn interval_set_insert_order_is_irrelevant(mut ivs in prop::collection::vec(interval(), 1..12)) {
        let forward: IntervalSet = ivs.iter().copied().collect();
        ivs.reverse();
        let backward: IntervalSet = ivs.iter().copied().collect();
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn remove_then_contains_is_false(base in interval(), cut in interval()) {
        let mut set = IntervalSet::from_interval(base);
        set.remove(cut);
        for t in cut.ts..cut.exp {
            prop_assert!(!set.contains(t));
        }
        for t in base.ts..base.exp {
            if !cut.contains(t) {
                prop_assert!(set.contains(t));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Regex → DFA equivalence with the NFA oracle
// ---------------------------------------------------------------------

fn regex(depth: u32) -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        (0u32..3).prop_map(|l| Regex::Label(Label(l))),
        Just(Regex::Epsilon),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.prop_map(Regex::plus),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn dfa_equals_nfa_on_random_words(re in regex(3), words in prop::collection::vec(prop::collection::vec(0u32..3, 0..6), 1..20)) {
        let dfa = Dfa::from_regex(&re);
        let nfa = Nfa::from_regex(&re);
        for w in &words {
            let word: Vec<Label> = w.iter().map(|&l| Label(l)).collect();
            prop_assert_eq!(dfa.accepts(&word), nfa.accepts(&word), "word {:?} of {:?}", word, re);
        }
    }

    #[test]
    fn dfa_nullability_matches_regex(re in regex(3)) {
        let dfa = Dfa::from_regex(&re);
        prop_assert_eq!(dfa.accepts_empty(), re.nullable());
    }
}

// ---------------------------------------------------------------------
// Full-engine snapshot reducibility on random streams
// ---------------------------------------------------------------------

/// (src, trg, label-idx, ts-increment) tuples → a valid ordered stream.
fn raw_edges() -> impl Strategy<Value = Vec<(u64, u64, u32, u64)>> {
    prop::collection::vec((0u64..5, 0u64..5, 0u32..2, 0u64..3), 1..40)
}

fn run_reducibility(
    program_text: &str,
    edges: Vec<(u64, u64, u32, u64)>,
    window: WindowSpec,
    opts: EngineOptions,
) -> Result<(), TestCaseError> {
    let program = parse_program(program_text).unwrap();
    let names = ["a", "b"];
    let query = SgqQuery::new(program.clone(), window);
    let mut engine = Engine::from_query_with(&query, opts);
    let mut windowed = Vec::new();
    let mut t = 0u64;
    for (s, tr, l, dt) in edges {
        t += dt;
        // Labels the query does not reference are discarded (§7.2.1).
        let Some(label) = engine.labels().get(names[l as usize]) else {
            continue;
        };
        let sge = Sge::raw(s, tr, label, t);
        engine.process(sge);
        windowed.push(Sgt::edge(
            sge.src,
            sge.trg,
            sge.label,
            window.interval_for(t),
        ));
    }
    // Window movement is time-driven (needed by the negative-tuple PATH).
    engine.advance_time(t + window.size + 1);
    for check_t in 0..t + window.size + 1 {
        let snap = SnapshotGraph::at_time(check_t, &windowed);
        let expect = oracle::evaluate_answer(&program, &snap);
        prop_assert_eq!(
            engine.answer_at(check_t),
            expect,
            "{} at t={}",
            program_text,
            check_t
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn join_engine_is_reducible(edges in raw_edges()) {
        run_reducibility(
            "Ans(x, y) <- a(x, z), b(z, y).",
            edges,
            WindowSpec::sliding(8),
            EngineOptions::default(),
        )?;
    }

    #[test]
    fn spath_engine_is_reducible(edges in raw_edges()) {
        run_reducibility(
            "Ans(x, y) <- (a b*)(x, y).",
            edges,
            WindowSpec::sliding(8),
            EngineOptions::default(),
        )?;
    }

    #[test]
    fn negpath_engine_is_reducible(edges in raw_edges()) {
        run_reducibility(
            "Ans(x, y) <- a+(x, y).",
            edges,
            WindowSpec::sliding(8),
            EngineOptions {
                path_impl: PathImpl::NegativeTuple,
                ..Default::default()
            },
        )?;
    }

    #[test]
    fn composite_engine_is_reducible(edges in raw_edges()) {
        run_reducibility(
            "RL(x, y)  <- a+(x, y), b(x, y).
             Ans(x, y) <- RL+(x, y).",
            edges,
            WindowSpec::sliding(6),
            EngineOptions::default(),
        )?;
    }

    #[test]
    fn wcoj_pattern_engine_is_reducible(edges in raw_edges()) {
        // Triangle-style pattern through the WCOJ physical operator.
        run_reducibility(
            "Ans(x, y) <- a(x, z), b(z, y), a(x, y).",
            edges,
            WindowSpec::sliding(8),
            EngineOptions {
                pattern_impl: PatternImpl::Wcoj,
                ..Default::default()
            },
        )?;
    }

    #[test]
    fn property_filter_engine_is_reducible(edges in raw_edges()) {
        // Attribute predicates (§8 extension): engine-side ingestion
        // filtering must equal the oracle evaluating predicates over the
        // snapshot's property store. Weights are derived deterministically
        // from the edge so both sides agree.
        use s_graffito::types::PropMap;
        let text = "Ans(x, y) <- a(x, z)[w >= 2], b(z, y).";
        let program = parse_program(text).unwrap();
        let window = WindowSpec::sliding(8);
        let query = SgqQuery::new(program.clone(), window);
        let mut engine = Engine::from_query(&query);
        let names = ["a", "b"];
        let mut windowed = Vec::new();
        let mut t = 0u64;
        for (s, tr, l, dt) in edges {
            t += dt;
            let label = engine.labels().get(names[l as usize]).unwrap();
            let w = ((s + 2 * tr + l as u64) % 4) as i64; // deterministic weight
            let props = PropMap::from_pairs([("w", w)]);
            let sge = Sge::raw(s, tr, label, t);
            engine.process_with_props(sge, props.clone());
            windowed.push(
                Sgt::edge(sge.src, sge.trg, sge.label, window.interval_for(t))
                    .with_props(std::sync::Arc::new(props)),
            );
        }
        for check_t in 0..t + 9 {
            let snap = SnapshotGraph::at_time(check_t, &windowed);
            let expect = oracle::evaluate_answer(&program, &snap);
            prop_assert_eq!(engine.answer_at(check_t), expect, "t={}", check_t);
        }
    }

    #[test]
    fn per_label_windows_are_reducible(edges in raw_edges()) {
        // Figure 7's individually-windowed streams: snapshot reducibility
        // holds with each label windowed by its own W(T, β).
        let text = "Ans(x, y) <- a(x, z), b(z, y).";
        let program = parse_program(text).unwrap();
        let query = SgqQuery::new(program.clone(), WindowSpec::new(12, 2))
            .with_label_window("a", WindowSpec::new(5, 1));
        let mut engine = Engine::from_query(&query);
        let names = ["a", "b"];
        let mut windowed = Vec::new();
        let mut t = 0u64;
        for (s, tr, l, dt) in edges {
            t += dt;
            let label = engine.labels().get(names[l as usize]).unwrap();
            let sge = Sge::raw(s, tr, label, t);
            engine.process(sge);
            windowed.push(Sgt::edge(
                sge.src,
                sge.trg,
                sge.label,
                query.window_for(label).interval_for(t),
            ));
        }
        engine.advance_time(t + 13);
        for check_t in 0..t + 13 {
            let snap = SnapshotGraph::at_time(check_t, &windowed);
            let expect = oracle::evaluate_answer(&program, &snap);
            prop_assert_eq!(engine.answer_at(check_t), expect, "t={}", check_t);
        }
    }

    #[test]
    fn batched_ingestion_is_reducible(edges in raw_edges()) {
        // §7.3 batching must preserve snapshot reducibility exactly.
        let text = "Ans(x, y) <- a(x, z), b(z, y).";
        let program = parse_program(text).unwrap();
        let window = WindowSpec::new(8, 2);
        let query = SgqQuery::new(program.clone(), window);
        let mut engine = Engine::from_query(&query);
        let names = ["a", "b"];
        let mut stream = Vec::new();
        let mut windowed = Vec::new();
        let mut t = 0u64;
        for (s, tr, l, dt) in edges {
            t += dt;
            let label = engine.labels().get(names[l as usize]).unwrap();
            stream.push(Sge::raw(s, tr, label, t));
            windowed.push(Sgt::edge(
                VertexId(s),
                VertexId(tr),
                label,
                window.interval_for(t),
            ));
        }
        engine.run_batched(&stream, 3);
        engine.advance_time(t + 9);
        for check_t in 0..t + 9 {
            let snap = SnapshotGraph::at_time(check_t, &windowed);
            let expect = oracle::evaluate_answer(&program, &snap);
            prop_assert_eq!(engine.answer_at(check_t), expect, "t={}", check_t);
        }
    }

    #[test]
    fn wcoj_equals_hash_tree(edges in raw_edges()) {
        // The two PATTERN physical implementations are interchangeable:
        // identical answers at every time instant on random streams.
        let text = "Ans(x, y) <- a(x, z), b(z, y), b(x, w), a(w, y).";
        let program = parse_program(text).unwrap();
        let window = WindowSpec::sliding(8);
        let query = SgqQuery::new(program, window);
        let mut tree = Engine::from_query(&query);
        let mut wcoj = Engine::from_query_with(
            &query,
            EngineOptions { pattern_impl: PatternImpl::Wcoj, ..Default::default() },
        );
        let names = ["a", "b"];
        let mut t = 0u64;
        for (s, tr, l, dt) in edges {
            t += dt;
            let label = tree.labels().get(names[l as usize]).unwrap();
            tree.process(Sge::raw(s, tr, label, t));
            wcoj.process(Sge::raw(s, tr, label, t));
        }
        for check_t in 0..t + 10 {
            prop_assert_eq!(tree.answer_at(check_t), wcoj.answer_at(check_t), "t={}", check_t);
        }
    }
}
