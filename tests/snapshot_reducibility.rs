//! The master correctness property of the whole system (Def. 14):
//! at every time instant `t`, the snapshot of the streaming query's result
//! equals the one-time query evaluated over the snapshot of the windowed
//! input — checked across query shapes, window configurations, and both
//! PATH implementations, on randomized streams.

use s_graffito::datagen::uniform_stream;
use s_graffito::prelude::*;
use s_graffito::query::oracle;
use s_graffito::types::{Edge, FxHashSet, InputStream, SnapshotGraph};

/// Runs `program_text` over a random stream and checks Def. 14 at every
/// instant in `[0, horizon)`.
#[allow(clippy::too_many_arguments)]
fn check(
    program_text: &str,
    window: WindowSpec,
    stream_labels: &[&'static str],
    vertices: u64,
    edges: usize,
    span: u64,
    seed: u64,
    opts: EngineOptions,
) {
    let program = parse_program(program_text).unwrap();
    let query = SgqQuery::new(program.clone(), window);
    let mut engine = Engine::from_query_with(&query, opts);
    let raw = uniform_stream(stream_labels, vertices, edges, span, seed);
    let stream: InputStream = s_graffito::datagen::resolve(&raw, engine.labels());

    let mut windowed: Vec<Sgt> = Vec::new();
    for sge in &stream {
        engine.process(*sge);
        windowed.push(Sgt::edge(
            sge.src,
            sge.trg,
            sge.label,
            window.interval_for(sge.t),
        ));
    }

    // Window movement is time-driven: drive event time to the horizon so
    // the negative-tuple PATH processes its remaining expirations (the
    // direct-approach operators need no such processing — purge is GC).
    let horizon = span + window.size + 2;
    engine.advance_time(horizon);
    for t in 0..horizon {
        let snap = SnapshotGraph::at_time(t, &windowed);
        let expect = oracle::evaluate_answer(&program, &snap);
        let got = engine.answer_at(t);
        assert_eq!(
            got, expect,
            "{program_text} window={window:?} seed={seed} t={t}"
        );
    }
}

const QUERIES: &[(&str, &[&str])] = &[
    ("Ans(x, y) <- a(x, y).", &["a", "b"]),
    ("Ans(x, y) <- a(x, z), b(z, y).", &["a", "b"]),
    ("Ans(x, y) <- a(x, z), b(z, y), a(y, w).", &["a", "b"]),
    ("Ans(x, y) <- a+(x, y).", &["a", "b"]),
    ("Ans(x, y) <- a*(x, y).", &["a", "b"]),
    ("Ans(x, y) <- (a b*)(x, y).", &["a", "b"]),
    ("Ans(x, y) <- (a b* c*)(x, y).", &["a", "b", "c"]),
    ("Ans(x, y) <- (a b c)+(x, y).", &["a", "b", "c"]),
    ("Ans(x, y) <- (a|b)+(x, y).", &["a", "b"]),
    ("Ans(x, y) <- a+(x, y), b(x, m), c(m, y).", &["a", "b", "c"]),
    (
        "RL(x, y)  <- a+(x, y), b(x, m), c(m, y).
         Ans(x, m) <- RL+(x, y), c(m, y).",
        &["a", "b", "c"],
    ),
    (
        "D(x, y)   <- a(x, y).
         D(x, y)   <- b(x, y).
         Ans(x, y) <- D+(x, y).",
        &["a", "b"],
    ),
];

#[test]
fn direct_path_impl_is_snapshot_reducible() {
    for (i, &(q, labels)) in QUERIES.iter().enumerate() {
        check(
            q,
            WindowSpec::sliding(10),
            labels,
            7,
            60,
            30,
            42 + i as u64,
            EngineOptions::default(),
        );
    }
}

#[test]
fn negative_tuple_path_impl_is_snapshot_reducible() {
    // The [57]-style PATH lazily extends validity at window movements, so
    // exactness holds under β-aligned windows (T % β == 0), which is also
    // how the paper runs it (30d window, 1d slide).
    for (i, &(q, labels)) in QUERIES.iter().enumerate() {
        check(
            q,
            WindowSpec::sliding(10),
            labels,
            6,
            50,
            25,
            1000 + i as u64,
            EngineOptions {
                path_impl: PathImpl::NegativeTuple,
                ..Default::default()
            },
        );
    }
}

#[test]
fn coarse_slides_are_snapshot_reducible() {
    for (i, &(q, labels)) in QUERIES.iter().enumerate() {
        check(
            q,
            WindowSpec::new(12, 4),
            labels,
            6,
            50,
            40,
            7_000 + i as u64,
            EngineOptions::default(),
        );
    }
}

#[test]
fn many_seeds_on_the_recursive_composite() {
    let q = "RL(x, y)  <- a+(x, y), b(x, m), c(m, y).
             Ans(x, m) <- RL+(x, y), c(m, y).";
    for seed in 0..8 {
        check(
            q,
            WindowSpec::sliding(8),
            &["a", "b", "c"],
            6,
            70,
            35,
            seed,
            EngineOptions::default(),
        );
    }
}

#[test]
fn path_payloads_are_valid_witnesses() {
    // Every PATH result's materialized path must be contiguous, connect
    // the result endpoints, spell a word in L(R), and be valid throughout
    // the claimed interval.
    let program = parse_program("Ans(x, y) <- (a b* c*)(x, y).").unwrap();
    let window = WindowSpec::sliding(12);
    let query = SgqQuery::new(program, window);
    let mut engine = Engine::from_query(&query);
    let raw = uniform_stream(&["a", "b", "c"], 8, 120, 60, 9);
    let stream = s_graffito::datagen::resolve(&raw, engine.labels());

    let mut regex_labels = engine.labels().clone();
    let re = s_graffito::automata::Regex::parse("a b* c*", &mut regex_labels).unwrap();
    let dfa = s_graffito::automata::Dfa::from_regex(&re);

    // Track per-edge coalesced validity for witness checking.
    let mut edge_ivs: std::collections::HashMap<Edge, s_graffito::types::IntervalSet> =
        Default::default();
    let mut checked = 0;
    for sge in &stream {
        edge_ivs
            .entry(sge.edge())
            .or_default()
            .insert(window.interval_for(sge.t));
        for r in engine.process(*sge) {
            let Payload::Path(p) = &r.payload else {
                panic!("PATH results must carry materialized paths");
            };
            assert_eq!(p.src(), r.src);
            assert_eq!(p.dst(), r.trg);
            assert!(dfa.accepts(&p.label_sequence()), "witness spells L(R)");
            // The materialized payload is the max-expiry derivation
            // (coalescing, Def. 11 / §6.2.4 fn. 7): every witness edge must
            // be valid at the last claimed instant.
            let last = r.interval.exp - 1;
            for e in p.edges() {
                assert!(
                    edge_ivs.get(e).is_some_and(|set| set.contains(last)),
                    "witness edge {e:?} must be valid at {last} (result {:?})",
                    r.interval
                );
            }
            checked += 1;
        }
    }
    assert!(checked > 20, "exercised {checked} path results");
    let _ = FxHashSet::<u8>::default(); // keep import used
}
