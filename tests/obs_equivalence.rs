//! Observability neutrality (property-based): for any random stream and
//! batch split, enabling observability — [`ObsLevel::Counters`] or
//! [`ObsLevel::Timing`] — must leave result logs **bit-identical** (not
//! merely equal coverage) and the deterministic [`ExecStats`] fingerprint
//! unchanged relative to [`ObsLevel::Off`], at both the serial `(shards,
//! workers) = (1, 1)` configuration and the pooled sharded `(4, 4)` one,
//! for both [`Engine`] and [`MultiQueryEngine`] — the latter including a
//! mid-stream deregister + re-register (register-time catch-up replays
//! through a pinned `ObsLevel::Off` instance, so the histograms' marks
//! must resynchronize without perturbing anything).
//!
//! The unit tests at the bottom cover the positive side of the contract:
//! under `Timing` the counters actually populate — `explain_analyze`
//! renders non-zero per-operator work, the metrics snapshot serialises to
//! parseable JSONL, a [`JsonlTraceSink`] receives the lifecycle events,
//! and the per-query histograms fill.
//!
//! [`ExecStats`]: s_graffito::core::metrics::ExecStats

use proptest::prelude::*;
use s_graffito::prelude::*;
use s_graffito::types::{Sge, VertexId};

const WINDOW: u64 = 24;
const SLIDE: u64 = 6;
const SPAN: u64 = 72;

/// The `(shards, workers)` grid each observability level is checked at.
const GRIDS: [(usize, usize); 2] = [(1, 1), (4, 4)];
/// The enabled levels compared against the [`ObsLevel::Off`] baseline.
const LEVELS: [ObsLevel; 2] = [ObsLevel::Counters, ObsLevel::Timing];

/// One raw stream event: insert or (sometimes) an explicit deletion of a
/// previously inserted edge.
#[derive(Debug, Clone, Copy)]
enum Event {
    Insert(u64, u64, u8, u64),
    /// Deletes the most recent not-yet-deleted insert (resolved when the
    /// event sequence is materialized).
    DeleteRecent,
}

fn events(max_len: usize, with_deletes: bool) -> impl Strategy<Value = Vec<Event>> {
    let insert = (0u64..12, 0u64..12, 0u8..3, 1u64..4)
        .prop_map(|(s, t, l, dt)| Event::Insert(s, t, l, dt))
        .boxed();
    let event = if with_deletes {
        // ~1 in 5 events deletes the most recent live insert.
        prop_oneof![
            insert.clone(),
            insert.clone(),
            insert.clone(),
            insert.clone(),
            Just(Event::DeleteRecent).boxed(),
        ]
        .boxed()
    } else {
        insert
    };
    prop::collection::vec(event, 1..max_len)
}

/// Materializes events into an ordered op sequence: `(sge, is_delete)`.
fn materialize(events: &[Event], labels: &[Label]) -> Vec<(Sge, bool)> {
    let mut t = 0u64;
    let mut live: Vec<Sge> = Vec::new();
    let mut out = Vec::new();
    for ev in events {
        match *ev {
            Event::Insert(s, tr, l, dt) => {
                t = (t + dt).min(SPAN);
                let sge = Sge::new(VertexId(s), VertexId(tr), labels[l as usize], t);
                live.push(sge);
                out.push((sge, false));
            }
            Event::DeleteRecent => {
                if let Some(sge) = live.pop() {
                    out.push((sge, true));
                }
            }
        }
    }
    out
}

fn opts(with_deletes: bool, (shards, workers): (usize, usize), obs: ObsLevel) -> EngineOptions {
    EngineOptions {
        suppress_duplicates: !with_deletes,
        shards,
        workers,
        obs,
        ..Default::default()
    }
}

/// Drives `ops` through `process_batch` under the given options,
/// splitting insert runs at the given cut points (deletions are their
/// own per-tuple calls, as in a real deletion pipeline).
fn run_engine(
    query: &SgqQuery,
    ops: &[(Sge, bool)],
    cuts: &[usize],
    options: EngineOptions,
) -> Engine {
    let mut e = Engine::from_query_with(query, options);
    let mut batch: Vec<Sge> = Vec::new();
    for (i, &(sge, del)) in ops.iter().enumerate() {
        if del {
            e.process_batch(&batch);
            batch.clear();
            e.delete(sge);
            continue;
        }
        batch.push(sge);
        if cuts.contains(&i) {
            e.process_batch(&batch);
            batch.clear();
        }
    }
    e.process_batch(&batch);
    e
}

fn query(text: &str) -> SgqQuery {
    SgqQuery::new(parse_program(text).unwrap(), WindowSpec::new(WINDOW, SLIDE))
}

/// Multi-label plans (so shard groups are non-trivial) covering the join
/// tree, the Kleene closure, and a composite of both.
const PLANS: [&str; 3] = [
    "Ans(x, y) <- a(x, z), b(z, y).",
    "Ans(x, y) <- a+(x, y).",
    "Ans(x, y) <- a+(x, m), b(m, y).",
];

/// The EDB labels `a`, `b`, `c` in `q`'s namespace (indexable by the
/// event's label ordinal).
fn label_vec(q: &SgqQuery) -> Vec<Label> {
    let labels = Engine::from_query(q).labels().clone();
    ["a", "b", "c"]
        .iter()
        .map(|n| labels.get(n).unwrap_or(Label(u32::MAX)))
        .collect()
}

/// Bit-identical engine comparison: result logs as `Vec<Sgt>` equality
/// (order included) and executor counters on the deterministic
/// fingerprint.
fn check_bit_identical(
    baseline: &Engine,
    other: &Engine,
    grid: (usize, usize),
    obs: ObsLevel,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        baseline.results(),
        other.results(),
        "insert log at {:?} obs={}",
        grid,
        obs.name()
    );
    prop_assert_eq!(
        baseline.deleted_results(),
        other.deleted_results(),
        "delete log at {:?} obs={}",
        grid,
        obs.name()
    );
    prop_assert_eq!(
        baseline.exec_stats().determinism_fingerprint(),
        other.exec_stats().determinism_fingerprint(),
        "executor counters at {:?} obs={}",
        grid,
        obs.name()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_obs_neutral_append_only(
        evs in events(60, false),
        cuts in prop::collection::vec(0usize..60, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PLANS[plan_idx]);
        let ops = materialize(&evs, &label_vec(&q));
        for &grid in &GRIDS {
            let baseline = run_engine(&q, &ops, &cuts, opts(false, grid, ObsLevel::Off));
            for &obs in &LEVELS {
                let run = run_engine(&q, &ops, &cuts, opts(false, grid, obs));
                check_bit_identical(&baseline, &run, grid, obs)?;
            }
        }
    }

    #[test]
    fn engine_obs_neutral_with_deletions(
        evs in events(50, true),
        cuts in prop::collection::vec(0usize..50, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PLANS[plan_idx]);
        let ops = materialize(&evs, &label_vec(&q));
        for &grid in &GRIDS {
            let baseline = run_engine(&q, &ops, &cuts, opts(true, grid, ObsLevel::Off));
            for &obs in &LEVELS {
                let run = run_engine(&q, &ops, &cuts, opts(true, grid, obs));
                check_bit_identical(&baseline, &run, grid, obs)?;
            }
        }
    }

    #[test]
    fn multiquery_obs_neutral_with_rereg(
        evs in events(50, false),
        cuts in prop::collection::vec(0usize..50, 0..8),
        dereg_plan in 0usize..3,
        dereg_step in 0usize..50,
        grid_idx in 0usize..2,
    ) {
        // One host per observability level on the same `(shards, workers)`
        // grid point, all driven identically — including a mid-stream
        // deregister of one query and its re-registration one flush later
        // (catch-up replays retained history through a pinned Off-level
        // instance). Collected `(QueryId, Sgt)` pairs are compared per
        // flush, so even the cross-query emission interleaving must match
        // the Off baseline exactly.
        let grid = GRIDS[grid_idx];
        let levels = [ObsLevel::Off, ObsLevel::Counters, ObsLevel::Timing];
        let queries: Vec<SgqQuery> = PLANS.iter().map(|p| query(p)).collect();
        let mut hosts: Vec<MultiQueryEngine> = levels
            .iter()
            .map(|&obs| MultiQueryEngine::with_options(opts(false, grid, obs)))
            .collect();
        let mut ids: Vec<Vec<QueryId>> = hosts
            .iter_mut()
            .map(|h| queries.iter().map(|q| h.register(q)).collect())
            .collect();

        let labels: Vec<Label> = ["a", "b", "c"]
            .iter()
            .map(|n| hosts[0].labels().get(n).unwrap_or(Label(u32::MAX)))
            .collect();
        let ops = materialize(&evs, &labels);

        // The dereg fires at the first flush at or after `dereg_step`;
        // the re-register happens at the following flush, so the query
        // is genuinely absent for a stretch of stream.
        let mut dereg_done = false;
        let mut rereg_done = false;
        let mut batch: Vec<Sge> = Vec::new();
        let mut step = 0usize;
        let mut flush = |hosts: &mut Vec<MultiQueryEngine>,
                         ids: &mut Vec<Vec<QueryId>>,
                         batch: &mut Vec<Sge>,
                         step: usize|
         -> Result<(), TestCaseError> {
            let baseline_pairs = hosts[0].process_batch(batch);
            // Baseline pair log re-keyed by registration slot: QueryIds
            // differ across hosts after a re-registration, but slots
            // correspond.
            let slot_of = |ids: &[QueryId], q: QueryId| ids.iter().position(|&i| i == q);
            let baseline_slots: Vec<(Option<usize>, Sgt)> = baseline_pairs
                .iter()
                .map(|(q, s)| (slot_of(&ids[0], *q), s.clone()))
                .collect();
            for h in 1..hosts.len() {
                let pairs = hosts[h].process_batch(batch);
                let slots: Vec<(Option<usize>, Sgt)> = pairs
                    .iter()
                    .map(|(q, s)| (slot_of(&ids[h], *q), s.clone()))
                    .collect();
                prop_assert_eq!(
                    &baseline_slots,
                    &slots,
                    "collected pairs diverged at {:?} obs={}",
                    grid,
                    levels[h].name()
                );
            }
            batch.clear();
            if !dereg_done && step >= dereg_step {
                for (h, host) in hosts.iter_mut().enumerate() {
                    prop_assert!(host.deregister(ids[h][dereg_plan]));
                }
                dereg_done = true;
            } else if dereg_done && !rereg_done {
                for (h, host) in hosts.iter_mut().enumerate() {
                    ids[h][dereg_plan] = host.register(&queries[dereg_plan]);
                }
                rereg_done = true;
            }
            Ok(())
        };
        for &(sge, _) in &ops {
            batch.push(sge);
            if cuts.contains(&step) {
                flush(&mut hosts, &mut ids, &mut batch, step)?;
            }
            step += 1;
        }
        flush(&mut hosts, &mut ids, &mut batch, step)?;

        // Final per-query logs and executor counters, bit-identical.
        let baseline_fp = hosts[0].exec_stats().determinism_fingerprint();
        for h in 1..hosts.len() {
            for (slot, (&base_id, &host_id)) in ids[0].iter().zip(&ids[h]).enumerate() {
                prop_assert_eq!(
                    hosts[0].results(base_id),
                    hosts[h].results(host_id),
                    "query slot {} insert log at {:?} obs={}",
                    slot,
                    grid,
                    levels[h].name()
                );
                prop_assert_eq!(
                    hosts[0].deleted_results(base_id),
                    hosts[h].deleted_results(host_id),
                    "query slot {} delete log at {:?} obs={}",
                    slot,
                    grid,
                    levels[h].name()
                );
            }
            prop_assert_eq!(
                baseline_fp,
                hosts[h].exec_stats().determinism_fingerprint(),
                "executor counters at {:?} obs={}",
                grid,
                levels[h].name()
            );
        }
    }
}

/// A small deterministic stream dense enough to make every operator of
/// `a+(x, m), b(m, y)` do work across several epochs and purges.
fn dense_ops(labels: &[Label]) -> Vec<Sge> {
    let mut out = Vec::new();
    for t in 0..SPAN {
        let (s, d) = (t % 7, (t + 3) % 7);
        out.push(Sge::new(
            VertexId(s),
            VertexId(d),
            labels[(t % 2) as usize],
            t,
        ));
    }
    out
}

#[test]
fn explain_analyze_reports_live_counters_under_timing() {
    let q = query(PLANS[2]);
    let mut engine = Engine::from_query_with(
        &q,
        EngineOptions {
            obs: ObsLevel::Timing,
            ..Default::default()
        },
    );
    let labels = label_vec(&q);
    for sge in dense_ops(&labels) {
        engine.process(sge);
    }
    let rendered = engine.explain_analyze();
    assert!(rendered.contains("obs=timing"), "{rendered}");
    // Every lowered operator line carries live counters; at least one did
    // real work with measured time.
    assert!(rendered.contains("inv="), "{rendered}");
    assert!(rendered.contains("time="), "{rendered}");
    let snap = engine.metrics_snapshot();
    assert!(!snap.operators.is_empty());
    assert!(snap.operators.iter().any(|op| op.stats.invocations > 0));
    assert!(snap.operators.iter().any(|op| op.stats.batch_nanos > 0));
    assert!(snap.operators.iter().any(|op| op.state_entries > 0));
}

#[test]
fn metrics_snapshot_serialises_parseable_jsonl() {
    let q = query(PLANS[0]);
    let mut engine = Engine::from_query_with(
        &q,
        EngineOptions {
            obs: ObsLevel::Counters,
            ..Default::default()
        },
    );
    let labels = label_vec(&q);
    for sge in dense_ops(&labels) {
        engine.process(sge);
    }
    let snap = engine.metrics_snapshot();
    let jsonl = snap.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 1 + snap.operators.len());
    assert!(lines[0].starts_with("{\"record\":\"exec\""));
    for line in &lines[1..] {
        assert!(line.starts_with("{\"record\":\"operator\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
    let csv = snap.to_csv();
    assert_eq!(csv.lines().count(), 1 + snap.operators.len());
}

#[test]
fn trace_sink_receives_lifecycle_events() {
    let q = query(PLANS[2]);
    let mut host = MultiQueryEngine::with_options(EngineOptions {
        shards: 2,
        ..Default::default()
    });
    let sink = JsonlTraceSink::new();
    host.set_trace_sink(Box::new(sink.clone()));
    let id = host.register(&q);
    let labels: Vec<Label> = ["a", "b", "c"]
        .iter()
        .map(|n| host.labels().get(n).unwrap_or(Label(u32::MAX)))
        .collect();
    // Several edges per tick on both labels, batch-ingested, so tick
    // epochs are wide enough (and active on ≥ 2 shards) to take the
    // shard-subgraph dispatch path.
    let mut ops = Vec::new();
    for t in 0..SPAN {
        for k in 0..4 {
            // Distinct (src, trg, label) within every slide period (24
            // consecutive values mod 29), so duplicate suppression keeps
            // the epoch above the parallel-dispatch delta floor.
            let x = 4 * t + k;
            ops.push(Sge::new(
                VertexId(x % 29),
                VertexId((x + 7) % 29),
                labels[(x % 2) as usize],
                t,
            ));
        }
    }
    host.ingest_batch(&ops);
    // One trailing single-delta epoch stays under the parallel-dispatch
    // floor and takes the plain level sweep, so the trace carries both
    // dispatch shapes.
    host.ingest(Sge::new(VertexId(0), VertexId(1), labels[0], SPAN));
    host.deregister(id);
    let jsonl = sink.to_jsonl();
    for kind in [
        "\"event\":\"register\"",
        "\"event\":\"epoch_open\"",
        "\"event\":\"epoch_close\"",
        "\"event\":\"level_dispatch\"",
        "\"event\":\"shard_job\"",
        "\"event\":\"merge_replay\"",
        "\"event\":\"purge\"",
        "\"event\":\"deregister\"",
    ] {
        assert!(jsonl.contains(kind), "missing {kind} in:\n{jsonl}");
    }
    for line in jsonl.lines() {
        assert!(
            line.starts_with("{\"event\":\"") && line.ends_with('}'),
            "{line}"
        );
    }
}

#[test]
fn multiquery_histograms_and_explain_analyze_populate() {
    let mut host = MultiQueryEngine::with_options(EngineOptions {
        obs: ObsLevel::Timing,
        ..Default::default()
    });
    // Two structurally identical registrations share their whole plan, so
    // the attributed cost is split by fan-out share; a third distinct one
    // keeps the dataflow non-trivial.
    let shared_a = host.register(&query(PLANS[1]));
    let shared_b = host.register(&query(PLANS[1]));
    let solo = host.register(&query(PLANS[0]));
    let labels: Vec<Label> = ["a", "b", "c"]
        .iter()
        .map(|n| host.labels().get(n).unwrap_or(Label(u32::MAX)))
        .collect();
    for sge in dense_ops(&labels) {
        host.ingest(sge);
    }
    let snap = host.metrics_snapshot();
    assert_eq!(snap.queries.len(), 3);
    for qs in &snap.queries {
        assert!(qs.results > 0, "q{} emitted nothing", qs.query);
        assert!(
            qs.emissions.count > 0,
            "q{} emission histogram empty",
            qs.query
        );
        assert!(
            qs.latency.count > 0,
            "q{} latency histogram empty",
            qs.query
        );
        assert!(qs.latency.max > 0, "q{} recorded zero nanos", qs.query);
    }
    for id in [shared_a, shared_b, solo] {
        let rendered = host.explain_analyze(id).expect("registered query");
        assert!(rendered.contains("inv="), "{rendered}");
        assert!(rendered.contains("epochs"), "{rendered}");
    }
    assert!(host.explain_analyze(QueryId(99)).is_none());
}
