//! Explicit deletions (§6.2.5): negative tuples must leave the engine in a
//! state equivalent to never having seen the deleted edges.

use s_graffito::datagen::{resolve, uniform_stream};
use s_graffito::prelude::*;
use s_graffito::query::oracle;
use s_graffito::types::{FxHashSet, SnapshotGraph};

fn deletion_opts() -> EngineOptions {
    EngineOptions {
        suppress_duplicates: false,
        ..Default::default()
    }
}

/// The engine's deletion contract (set semantics, Def. 10) requires at
/// most one live insertion per `(src, trg, label)`; keep first occurrences.
fn unique_edges(stream: &s_graffito::types::InputStream) -> Vec<Sge> {
    let mut seen: FxHashSet<s_graffito::types::Edge> = FxHashSet::default();
    stream
        .sges()
        .iter()
        .filter(|s| seen.insert(s.edge()))
        .copied()
        .collect()
}

/// Interleaves inserts with deletions of random earlier edges and checks
/// the final answers against the oracle over the surviving edges.
fn check_interleaved(program_text: &str, labels: &[&'static str], seed: u64) {
    let program = parse_program(program_text).unwrap();
    // A window large enough that nothing expires: isolates deletion logic.
    let window = WindowSpec::sliding(10_000);
    let query = SgqQuery::new(program.clone(), window);
    let mut engine = Engine::from_query_with(&query, deletion_opts());
    let raw = uniform_stream(labels, 6, 80, 80, seed);
    let stream = unique_edges(&resolve(&raw, engine.labels()));

    let mut live: Vec<Sge> = Vec::new();
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for sge in &stream {
        engine.process(*sge);
        live.push(*sge);
        // Delete a random earlier edge about a third of the time.
        if !live.is_empty() && next() % 3 == 0 {
            let idx = (next() as usize) % live.len();
            let victim = live.swap_remove(idx);
            engine.delete(victim);
        }
    }

    let t = stream.last().map(|s| s.t).unwrap();
    let mut snap = SnapshotGraph::new();
    for sge in &live {
        if window.interval_for(sge.t).contains(t) {
            snap.add_edge(sge.edge());
        }
    }
    let expect = oracle::evaluate_answer(&program, &snap);
    assert_eq!(engine.answer_at(t), expect, "{program_text} seed={seed}");
}

#[test]
fn join_queries_survive_interleaved_deletions() {
    for seed in 1..6 {
        check_interleaved("Ans(x, y) <- a(x, z), b(z, y).", &["a", "b"], seed);
    }
}

#[test]
fn triangle_query_survives_interleaved_deletions() {
    for seed in 1..4 {
        check_interleaved(
            "Ans(x, y) <- a(x, y), b(x, m), c(m, y).",
            &["a", "b", "c"],
            seed,
        );
    }
}

#[test]
fn spath_index_matches_rebuild_after_deletions() {
    // For PATH, the §6.2.5 guarantee is on the Δ-PATH index: after a
    // deletion, every surviving pair must still be derivable and every
    // removed pair must not be. Compare answers against the oracle.
    for seed in 1..6 {
        let program = parse_program("Ans(x, y) <- a+(x, y).").unwrap();
        let window = WindowSpec::sliding(10_000);
        let query = SgqQuery::new(program.clone(), window);
        let mut engine = Engine::from_query_with(&query, deletion_opts());
        let raw = uniform_stream(&["a"], 6, 40, 40, seed);
        let stream = unique_edges(&resolve(&raw, engine.labels()));

        let mut live: FxHashSet<Sge> = FxHashSet::default();
        let mut events: Vec<Sge> = Vec::new();
        for sge in &stream {
            engine.process(*sge);
            live.insert(*sge);
            events.push(*sge);
            if events.len().is_multiple_of(4) {
                let victim = events[events.len() / 2];
                if live.remove(&victim) {
                    engine.delete(victim);
                }
            }
        }
        let t = stream.last().map(|s| s.t).unwrap();
        let mut snap = SnapshotGraph::new();
        for sge in &live {
            snap.add_edge(sge.edge());
        }
        let expect = oracle::evaluate_answer(&program, &snap);
        // The result *stream* under PATH deletions follows the negative-
        // tuple protocol; validate the current-pair view derived from it.
        let got: FxHashSet<(VertexId, VertexId)> = engine.answer_at(t);
        assert_eq!(got, expect, "seed={seed}");
    }
}

#[test]
fn delete_then_reinsert_is_idempotent() {
    let program = parse_program("Ans(x, y) <- a(x, z), a(z, y).").unwrap();
    let query = SgqQuery::new(program, WindowSpec::sliding(1_000));
    let mut engine = Engine::from_query_with(&query, deletion_opts());
    let a = engine.labels().get("a").unwrap();
    let e1 = Sge::raw(1, 2, a, 0);
    let e2 = Sge::raw(2, 3, a, 1);
    engine.process(e1);
    engine.process(e2);
    assert_eq!(engine.answer_at(2).len(), 1);
    engine.delete(e1);
    assert!(engine.answer_at(2).is_empty());
    engine.process(Sge::raw(1, 2, a, 3));
    assert_eq!(engine.answer_at(3).len(), 1);
    engine.delete(e2);
    assert!(engine.answer_at(3).is_empty());
}
