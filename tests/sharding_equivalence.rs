//! Label-sharded execution determinism (property-based): for any random
//! stream and batch split, the engine must produce **bit-identical**
//! result logs — not merely equal coverage — and identical deterministic
//! [`ExecStats`] counters at every tested `(shards, workers)`
//! configuration, for both [`Engine`] and [`MultiQueryEngine`], the
//! latter including a mid-stream deregister + re-register (shard
//! closures are rebuilt on every `lower`/`retire`, and register-time
//! catch-up replays through a pinned unsharded instance, so registration
//! churn must not perturb determinism either).
//!
//! The tested configurations cover the whole mechanism: `(1, 1)` is the
//! plain serial level sweep, `(2, 1)` runs shard-subgraphs inline on the
//! scheduler thread (sharding without a pool), and `(4, 4)` runs them on
//! the worker pool with more shard groups than the plans have labels
//! (exercising empty shard groups and the merge replay under real
//! thread interleaving).
//!
//! [`ExecStats`]: s_graffito::core::metrics::ExecStats

use proptest::prelude::*;
use s_graffito::prelude::*;
use s_graffito::types::{Sge, VertexId};

const WINDOW: u64 = 24;
const SLIDE: u64 = 6;
const SPAN: u64 = 72;

/// The `(shards, workers)` matrix every property is checked across; the
/// first entry is the serial baseline.
const CONFIGS: [(usize, usize); 3] = [(1, 1), (2, 1), (4, 4)];

/// One raw stream event: insert or (sometimes) an explicit deletion of a
/// previously inserted edge.
#[derive(Debug, Clone, Copy)]
enum Event {
    Insert(u64, u64, u8, u64),
    /// Deletes the most recent not-yet-deleted insert (resolved when the
    /// event sequence is materialized).
    DeleteRecent,
}

fn events(max_len: usize, with_deletes: bool) -> impl Strategy<Value = Vec<Event>> {
    let insert = (0u64..12, 0u64..12, 0u8..3, 1u64..4)
        .prop_map(|(s, t, l, dt)| Event::Insert(s, t, l, dt))
        .boxed();
    let event = if with_deletes {
        // ~1 in 5 events deletes the most recent live insert.
        prop_oneof![
            insert.clone(),
            insert.clone(),
            insert.clone(),
            insert.clone(),
            Just(Event::DeleteRecent).boxed(),
        ]
        .boxed()
    } else {
        insert
    };
    prop::collection::vec(event, 1..max_len)
}

/// Materializes events into an ordered op sequence: `(sge, is_delete)`.
fn materialize(events: &[Event], labels: &[Label]) -> Vec<(Sge, bool)> {
    let mut t = 0u64;
    let mut live: Vec<Sge> = Vec::new();
    let mut out = Vec::new();
    for ev in events {
        match *ev {
            Event::Insert(s, tr, l, dt) => {
                t = (t + dt).min(SPAN);
                let sge = Sge::new(VertexId(s), VertexId(tr), labels[l as usize], t);
                live.push(sge);
                out.push((sge, false));
            }
            Event::DeleteRecent => {
                if let Some(sge) = live.pop() {
                    out.push((sge, true));
                }
            }
        }
    }
    out
}

fn opts(with_deletes: bool, shards: usize, workers: usize) -> EngineOptions {
    EngineOptions {
        suppress_duplicates: !with_deletes,
        shards,
        workers,
        ..Default::default()
    }
}

/// Drives `ops` through `process_batch` under the given options,
/// splitting insert runs at the given cut points (deletions are their
/// own per-tuple calls, as in a real deletion pipeline).
fn run_engine(
    query: &SgqQuery,
    ops: &[(Sge, bool)],
    cuts: &[usize],
    options: EngineOptions,
) -> Engine {
    let mut e = Engine::from_query_with(query, options);
    let mut batch: Vec<Sge> = Vec::new();
    for (i, &(sge, del)) in ops.iter().enumerate() {
        if del {
            e.process_batch(&batch);
            batch.clear();
            e.delete(sge);
            continue;
        }
        batch.push(sge);
        if cuts.contains(&i) {
            e.process_batch(&batch);
            batch.clear();
        }
    }
    e.process_batch(&batch);
    e
}

fn query(text: &str) -> SgqQuery {
    SgqQuery::new(parse_program(text).unwrap(), WindowSpec::new(WINDOW, SLIDE))
}

/// Multi-label plans (so shard groups are non-trivial) covering the join
/// tree, the Kleene closure, and a composite of both.
const PLANS: [&str; 3] = [
    "Ans(x, y) <- a(x, z), b(z, y).",
    "Ans(x, y) <- a+(x, y).",
    "Ans(x, y) <- a+(x, m), b(m, y).",
];

/// The EDB labels `a`, `b`, `c` in `q`'s namespace (indexable by the
/// event's label ordinal).
fn label_vec(q: &SgqQuery) -> Vec<Label> {
    let labels = Engine::from_query(q).labels().clone();
    ["a", "b", "c"]
        .iter()
        .map(|n| labels.get(n).unwrap_or(Label(u32::MAX)))
        .collect()
}

/// Bit-identical engine comparison: result logs as `Vec<Sgt>` equality
/// (order included) and executor counters on the deterministic
/// fingerprint.
fn check_bit_identical(
    baseline: &Engine,
    other: &Engine,
    config: (usize, usize),
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        baseline.results(),
        other.results(),
        "insert log at {:?}",
        config
    );
    prop_assert_eq!(
        baseline.deleted_results(),
        other.deleted_results(),
        "delete log at {:?}",
        config
    );
    prop_assert_eq!(
        baseline.exec_stats().determinism_fingerprint(),
        other.exec_stats().determinism_fingerprint(),
        "executor counters at {:?}",
        config
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_sharded_identical_append_only(
        evs in events(60, false),
        cuts in prop::collection::vec(0usize..60, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PLANS[plan_idx]);
        let ops = materialize(&evs, &label_vec(&q));
        let (s0, w0) = CONFIGS[0];
        let baseline = run_engine(&q, &ops, &cuts, opts(false, s0, w0));
        for &(shards, workers) in &CONFIGS[1..] {
            let run = run_engine(&q, &ops, &cuts, opts(false, shards, workers));
            check_bit_identical(&baseline, &run, (shards, workers))?;
        }
    }

    #[test]
    fn engine_sharded_identical_with_deletions(
        evs in events(50, true),
        cuts in prop::collection::vec(0usize..50, 0..8),
        plan_idx in 0usize..3,
    ) {
        let q = query(PLANS[plan_idx]);
        let ops = materialize(&evs, &label_vec(&q));
        let (s0, w0) = CONFIGS[0];
        let baseline = run_engine(&q, &ops, &cuts, opts(true, s0, w0));
        for &(shards, workers) in &CONFIGS[1..] {
            let run = run_engine(&q, &ops, &cuts, opts(true, shards, workers));
            check_bit_identical(&baseline, &run, (shards, workers))?;
        }
    }

    #[test]
    fn multiquery_sharded_identical_with_rereg(
        evs in events(50, false),
        cuts in prop::collection::vec(0usize..50, 0..8),
        dereg_plan in 0usize..3,
        dereg_step in 0usize..50,
    ) {
        // One host per configuration, all driven identically — including
        // a mid-stream deregister of one query and its re-registration
        // one flush later (catch-up replays retained history). Collected
        // `(QueryId, Sgt)` pairs are compared per flush, so even the
        // cross-query emission interleaving must match the serial
        // baseline exactly.
        let queries: Vec<SgqQuery> = PLANS.iter().map(|p| query(p)).collect();
        let mut hosts: Vec<MultiQueryEngine> = CONFIGS
            .iter()
            .map(|&(shards, workers)| {
                MultiQueryEngine::with_options(EngineOptions {
                    shards,
                    workers,
                    ..Default::default()
                })
            })
            .collect();
        let mut ids: Vec<Vec<QueryId>> = hosts
            .iter_mut()
            .map(|h| queries.iter().map(|q| h.register(q)).collect())
            .collect();

        let labels: Vec<Label> = ["a", "b", "c"]
            .iter()
            .map(|n| hosts[0].labels().get(n).unwrap_or(Label(u32::MAX)))
            .collect();
        let ops = materialize(&evs, &labels);

        // The dereg fires at the first flush at or after `dereg_step`;
        // the re-register happens at the following flush, so the query
        // is genuinely absent for a stretch of stream.
        let mut dereg_done = false;
        let mut rereg_done = false;
        let mut batch: Vec<Sge> = Vec::new();
        let mut step = 0usize;
        let mut flush = |hosts: &mut Vec<MultiQueryEngine>,
                         ids: &mut Vec<Vec<QueryId>>,
                         batch: &mut Vec<Sge>,
                         step: usize|
         -> Result<(), TestCaseError> {
            let baseline_pairs = hosts[0].process_batch(batch);
            // Baseline pair log re-keyed by registration slot: QueryIds
            // differ across hosts after a re-registration, but slots
            // correspond.
            let slot_of = |ids: &[QueryId], q: QueryId| ids.iter().position(|&i| i == q);
            let baseline_slots: Vec<(Option<usize>, Sgt)> = baseline_pairs
                .iter()
                .map(|(q, s)| (slot_of(&ids[0], *q), s.clone()))
                .collect();
            for h in 1..hosts.len() {
                let pairs = hosts[h].process_batch(batch);
                let slots: Vec<(Option<usize>, Sgt)> = pairs
                    .iter()
                    .map(|(q, s)| (slot_of(&ids[h], *q), s.clone()))
                    .collect();
                prop_assert_eq!(
                    &baseline_slots,
                    &slots,
                    "collected pairs diverged at {:?}",
                    CONFIGS[h]
                );
            }
            batch.clear();
            if !dereg_done && step >= dereg_step {
                for (h, host) in hosts.iter_mut().enumerate() {
                    prop_assert!(host.deregister(ids[h][dereg_plan]));
                }
                dereg_done = true;
            } else if dereg_done && !rereg_done {
                for (h, host) in hosts.iter_mut().enumerate() {
                    ids[h][dereg_plan] = host.register(&queries[dereg_plan]);
                }
                rereg_done = true;
            }
            Ok(())
        };
        for &(sge, _) in &ops {
            batch.push(sge);
            if cuts.contains(&step) {
                flush(&mut hosts, &mut ids, &mut batch, step)?;
            }
            step += 1;
        }
        flush(&mut hosts, &mut ids, &mut batch, step)?;

        // Final per-query logs and executor counters, bit-identical.
        let baseline_fp = hosts[0].exec_stats().determinism_fingerprint();
        for h in 1..hosts.len() {
            for (slot, (&base_id, &host_id)) in ids[0].iter().zip(&ids[h]).enumerate() {
                prop_assert_eq!(
                    hosts[0].results(base_id),
                    hosts[h].results(host_id),
                    "query slot {} insert log at {:?}",
                    slot,
                    CONFIGS[h]
                );
                prop_assert_eq!(
                    hosts[0].deleted_results(base_id),
                    hosts[h].deleted_results(host_id),
                    "query slot {} delete log at {:?}",
                    slot,
                    CONFIGS[h]
                );
            }
            prop_assert_eq!(
                baseline_fp,
                hosts[h].exec_stats().determinism_fingerprint(),
                "executor counters at {:?}",
                CONFIGS[h]
            );
        }
    }
}
