//! Multi-query host equivalence: a [`MultiQueryEngine`] hosting Q1–Q7
//! concurrently must produce, per query, exactly the results of dedicated
//! independent [`Engine`]s on the same stream — while instantiating
//! strictly fewer physical operators. Also covers mid-stream deregister +
//! re-register (catch-up semantics) and batched ingestion.

use proptest::prelude::*;
use s_graffito::datagen::workloads::{self, Dataset};
use s_graffito::datagen::{snb_stream, so_stream, RawStream, SnbConfig, SoConfig};
use s_graffito::multiquery::{MultiQueryEngine, QueryId};
use s_graffito::prelude::*;
use s_graffito::types::{InputStream, VertexId};

const WINDOW: u64 = 600;

fn stream_for(dataset: Dataset) -> RawStream {
    match dataset {
        Dataset::So => so_stream(&SoConfig::new(60, 1_500)),
        Dataset::Snb => snb_stream(&SnbConfig::new(60, 1_500)),
    }
}

fn queries_for(dataset: Dataset) -> Vec<SgqQuery> {
    (1..=7)
        .map(|n| SgqQuery::new(workloads::query(n, dataset), WindowSpec::sliding(WINDOW)))
        .collect()
}

/// The semantic content of a result log: per answer pair, the coalesced
/// validity coverage (Def. 10–12 set semantics). Raw emission *sequences*
/// are not comparable across label namespaces — operator hash tables
/// iterate in label-id-dependent order, so two engines with differently
/// numbered interners emit the same coverage chunked differently.
fn coalesced(results: &[Sgt]) -> std::collections::BTreeMap<(u64, u64), Vec<Interval>> {
    let mut map: std::collections::BTreeMap<(u64, u64), s_graffito::types::IntervalSet> =
        std::collections::BTreeMap::new();
    for s in results {
        map.entry((s.src.0, s.trg.0))
            .or_default()
            .insert(s.interval);
    }
    map.into_iter()
        .map(|(k, set)| (k, set.intervals().to_vec()))
        .collect()
}

/// Runs `queries` side by side — each in a dedicated engine and all in one
/// host — over `raw`, returning `(host, ids, engines)` after the full
/// stream has been processed by both sides.
fn run_side_by_side(
    raw: &RawStream,
    queries: &[SgqQuery],
) -> (MultiQueryEngine, Vec<QueryId>, Vec<Engine>) {
    let mut engines: Vec<Engine> = queries.iter().map(Engine::from_query).collect();
    let streams: Vec<InputStream> = engines
        .iter()
        .map(|e| s_graffito::datagen::resolve(raw, e.labels()))
        .collect();

    let mut host = MultiQueryEngine::new();
    let ids: Vec<QueryId> = queries.iter().map(|q| host.register(q)).collect();
    let host_stream = s_graffito::datagen::resolve(raw, host.labels());

    s_graffito::datagen::feed::feed(&host_stream, |sge| {
        host.process(sge);
    });
    for (engine, stream) in engines.iter_mut().zip(&streams) {
        s_graffito::datagen::feed::feed(stream, |sge| {
            engine.process(sge);
        });
    }
    (host, ids, engines)
}

fn check_dataset(dataset: Dataset) {
    let raw = stream_for(dataset);
    let queries = queries_for(dataset);
    let (host, ids, engines) = run_side_by_side(&raw, &queries);

    for (n, (id, engine)) in ids.iter().zip(&engines).enumerate() {
        assert_eq!(
            coalesced(host.results(*id)),
            coalesced(engine.results()),
            "{} Q{}: host vs dedicated engine emissions",
            dataset.name(),
            n + 1
        );
        for t in [0, WINDOW / 2, WINDOW, WINDOW + 13, 2 * WINDOW] {
            assert_eq!(
                host.answer_at(*id, t)
                    .into_iter()
                    .map(|(a, b)| (a.0, b.0))
                    .collect::<std::collections::BTreeSet<_>>(),
                engine
                    .answer_at(t)
                    .into_iter()
                    .map(|(a, b)| (a.0, b.0))
                    .collect::<std::collections::BTreeSet<_>>(),
                "{} Q{} answers at t={t}",
                dataset.name(),
                n + 1
            );
        }
    }
}

#[test]
fn q1_to_q7_concurrent_equals_independent_engines_so() {
    check_dataset(Dataset::So);
}

#[test]
fn q1_to_q7_concurrent_equals_independent_engines_snb() {
    check_dataset(Dataset::Snb);
}

/// The acceptance gate: 16 overlapping Q1–Q7 queries instantiate strictly
/// fewer physical operators than 16 independent engines while producing
/// identical per-query results.
#[test]
fn sixteen_overlapping_queries_share_operators() {
    let raw = stream_for(Dataset::So);
    let queries: Vec<SgqQuery> = (0..16)
        .map(|i| {
            SgqQuery::new(
                workloads::query(i % 7 + 1, Dataset::So),
                WindowSpec::sliding(WINDOW),
            )
        })
        .collect();
    let (host, ids, engines) = run_side_by_side(&raw, &queries);

    let independent_ops: usize = engines.iter().map(|e| e.operator_names().len()).sum();
    let host_ops = host.operator_count();
    assert!(
        host_ops < independent_ops,
        "sharing failed: host instantiates {host_ops} operators vs {independent_ops} independent \
         ({:?})",
        host.operator_names()
    );
    // 16 queries over 7 distinct shapes: the host needs no more operators
    // than the 7 distinct queries would (plus nothing for repeats).
    let distinct: usize = engines[..7].iter().map(|e| e.operator_names().len()).sum();
    assert!(
        host_ops < distinct,
        "cross-query sharing beats per-shape duplication: {host_ops} vs {distinct}"
    );

    for (id, engine) in ids.iter().zip(&engines) {
        assert_eq!(
            coalesced(host.results(*id)),
            coalesced(engine.results()),
            "query {id} emissions diverge"
        );
    }
}

#[test]
fn deregistration_retires_exclusive_operators_only() {
    let mk = |n: usize| {
        SgqQuery::new(
            workloads::query(n, Dataset::So),
            WindowSpec::sliding(WINDOW),
        )
    };
    let mut host = MultiQueryEngine::new();
    let q6 = host.register(&mk(6));
    let ops_q6_only = host.operator_count();
    let q7 = host.register(&mk(7)); // Q7 embeds Q6's pattern
    let ops_both = host.operator_count();
    assert!(
        ops_both < ops_q6_only + ops_q6_only + 2,
        "Q7 reuses Q6 subplans"
    );
    assert!(host.deregister(q7));
    assert_eq!(
        host.operator_count(),
        ops_q6_only,
        "Q7's exclusive operators retired, Q6's shared ones kept"
    );
    assert!(!host.deregister(q7), "double deregister is a no-op");
    assert!(host.deregister(q6));
    assert_eq!(host.operator_count(), 0, "empty host holds no operators");
}

/// Mid-stream deregister + register: after re-registration with catch-up,
/// the query answers exactly like a dedicated engine that processed the
/// entire stream (for instants from the re-registration point on).
#[test]
fn deregister_register_midstream_catches_up() {
    let raw = stream_for(Dataset::So);
    let q2 = || {
        SgqQuery::new(
            workloads::query(2, Dataset::So),
            WindowSpec::sliding(WINDOW),
        )
    };
    let q6 = || {
        SgqQuery::new(
            workloads::query(6, Dataset::So),
            WindowSpec::sliding(WINDOW),
        )
    };

    // Dedicated reference engines over the full stream.
    let mut ref2 = Engine::from_query(&q2());
    let mut ref6 = Engine::from_query(&q6());
    let s2 = s_graffito::datagen::resolve(&raw, ref2.labels());
    let s6 = s_graffito::datagen::resolve(&raw, ref6.labels());
    for sge in s2.sges().iter() {
        ref2.process(*sge);
    }
    for sge in s6.sges().iter() {
        ref6.process(*sge);
    }

    // Host: Q2 stays registered throughout; Q6 leaves and comes back.
    let mut host = MultiQueryEngine::new();
    let id2 = host.register(&q2());
    let id6_first = host.register(&q6());
    let host_stream = s_graffito::datagen::resolve(&raw, host.labels());
    let events: Vec<Sge> = host_stream.sges().to_vec();
    let (a, b) = (events.len() / 3, 2 * events.len() / 3);

    for sge in &events[..a] {
        host.process(*sge);
    }
    assert!(host.deregister(id6_first));
    for sge in &events[a..b] {
        host.process(*sge);
    }
    let rereg_time = events[b.saturating_sub(1)].t;
    let id6 = host.register(&q6());
    let catch_up = host.drain(id6);
    assert!(
        !catch_up.is_empty(),
        "catch-up replay repopulates the re-registered query's window"
    );
    for sge in &events[b..] {
        host.process(*sge);
    }

    // Q2 was never touched: exact emission equality with its reference.
    assert_eq!(
        coalesced(host.results(id2)),
        coalesced(ref2.results()),
        "continuously-registered query unaffected by churn"
    );
    // Q6 re-registered mid-stream: identical answers for every instant
    // from the re-registration point on.
    let end = events.last().unwrap().t + WINDOW;
    for t in (rereg_time..end).step_by(97) {
        assert_eq!(
            host.answer_at(id6, t),
            ref6.answer_at(t),
            "re-registered Q6 answers at t={t}"
        );
    }
}

/// Batched ingestion through the host matches tuple-at-a-time, per query.
#[test]
fn host_batched_ingestion_matches_tuple_at_a_time() {
    let raw = stream_for(Dataset::So);
    let queries = queries_for(Dataset::So);

    let mut eager = MultiQueryEngine::new();
    let eager_ids: Vec<QueryId> = queries.iter().map(|q| eager.register(q)).collect();
    let mut batched = MultiQueryEngine::new();
    let batched_ids: Vec<QueryId> = queries.iter().map(|q| batched.register(q)).collect();

    let events: Vec<Sge> = s_graffito::datagen::resolve(&raw, eager.labels())
        .sges()
        .to_vec();
    for sge in &events {
        eager.process(*sge);
    }
    for chunk in events.chunks(64) {
        batched.process_batch(chunk);
    }

    let end = events.last().unwrap().t + WINDOW;
    for (ei, bi) in eager_ids.iter().zip(&batched_ids) {
        for t in (0..end).step_by(131) {
            assert_eq!(
                eager.answer_at(*ei, t),
                batched.answer_at(*bi, t),
                "query {ei} batched vs eager at t={t}"
            );
        }
    }
}

/// The host discards labels no registered query references, and picks
/// them up if a later registration needs them.
#[test]
fn unreferenced_labels_are_discarded_until_needed() {
    let mut host = MultiQueryEngine::new();
    let q_a = host.register(&SgqQuery::new(
        parse_program("Ans(x, y) <- a(x, y).").unwrap(),
        WindowSpec::sliding(50),
    ));
    // `b` is unknown to the host until a query referencing it registers.
    assert!(host.labels().get("b").is_none());
    let a = host.labels().get("a").unwrap();
    host.process(Sge::raw(1, 2, a, 0));
    let q_b = host.register(&SgqQuery::new(
        parse_program("Ans(x, y) <- b+(x, y).").unwrap(),
        WindowSpec::sliding(50),
    ));
    let b = host.labels().get("b").unwrap();
    let out = host.process(Sge::raw(2, 3, b, 1));
    assert!(out.iter().all(|(q, _)| *q == q_b));
    assert_eq!(host.results(q_a).len(), 1);
    assert_eq!(host.results(q_b).len(), 1);
}

/// Late registration when the whole plan is already warm for a twin: the
/// newcomer is seeded from the twin's log (warm stateful operators prune
/// covered re-insertions, so replay alone could not rebuild this).
#[test]
fn late_twin_registration_seeds_full_history() {
    let q = || {
        SgqQuery::new(
            workloads::query(1, Dataset::So),
            WindowSpec::sliding(WINDOW),
        )
    };
    let raw = stream_for(Dataset::So);
    let mut host = MultiQueryEngine::new();
    let early = host.register(&q());
    let events: Vec<Sge> = s_graffito::datagen::resolve(&raw, host.labels())
        .sges()
        .to_vec();
    let mid = events.len() / 2;
    for sge in &events[..mid] {
        host.process(*sge);
    }
    let late = host.register(&q());
    assert!(!host.drain(late).is_empty(), "twin seeding yields history");
    for sge in &events[mid..] {
        host.process(*sge);
    }
    assert_eq!(
        coalesced(host.results(early)),
        coalesced(host.results(late)),
        "late twin converges to the early twin's full history"
    );
}

/// Late registration of Q7 while Q6 holds its inner PATTERN warm: the
/// newcomer's exclusive operators sit *above* warm stateful shared ones,
/// which re-derive nothing on replay — catch-up must route history around
/// them (private cold replay + state adoption).
#[test]
fn late_registration_above_warm_stateful_subplan_catches_up() {
    let mk = |n: usize| {
        SgqQuery::new(
            workloads::query(n, Dataset::So),
            WindowSpec::sliding(WINDOW),
        )
    };
    let raw = stream_for(Dataset::So);

    // Reference: dedicated Q7 engine over the full stream.
    let mut ref7 = Engine::from_query(&mk(7));
    let s7 = s_graffito::datagen::resolve(&raw, ref7.labels());
    for sge in s7.sges() {
        ref7.process(*sge);
    }

    // Host: Q6 from the start, Q7 registered mid-stream.
    let mut host = MultiQueryEngine::new();
    let id6 = host.register(&mk(6));
    let events: Vec<Sge> = s_graffito::datagen::resolve(&raw, host.labels())
        .sges()
        .to_vec();
    let mid = events.len() / 2;
    for sge in &events[..mid] {
        host.process(*sge);
    }
    let reg_time = events[mid.saturating_sub(1)].t;
    let id7 = host.register(&mk(7));
    assert!(
        !host.drain(id7).is_empty(),
        "Q7 catch-up derives history through Q6's warm shared subplan"
    );
    for sge in &events[mid..] {
        host.process(*sge);
    }

    let end = events.last().unwrap().t + WINDOW;
    for t in (reg_time..end).step_by(89) {
        assert_eq!(
            host.answer_at(id7, t),
            ref7.answer_at(t),
            "late Q7 answers at t={t}"
        );
    }
    // Q6 is unaffected by Q7's arrival.
    let mut ref6 = Engine::from_query(&mk(6));
    let s6 = s_graffito::datagen::resolve(&raw, ref6.labels());
    for sge in s6.sges() {
        ref6.process(*sge);
    }
    assert_eq!(coalesced(host.results(id6)), coalesced(ref6.results()));
}

/// Catch-up completeness is bounded by the retention horizon: a query
/// whose window exceeds every previously registered one needs the horizon
/// provisioned up front (`set_retention_horizon`), and the horizon must
/// not shrink when a large-window query deregisters.
#[test]
fn retention_horizon_bounds_large_window_late_registration() {
    let small = || {
        SgqQuery::new(
            parse_program("Ans(x, y) <- a(x, z), b(z, y).").unwrap(),
            WindowSpec::sliding(10),
        )
    };
    let big = || {
        SgqQuery::new(
            parse_program("Ans(x, y) <- a(x, z), b(z, y).").unwrap(),
            WindowSpec::sliding(100),
        )
    };

    // Provisioned host: history survives long enough for the late big
    // window, so it answers exactly like a dedicated engine.
    let mut host = MultiQueryEngine::new();
    host.set_retention_horizon(100);
    let _s = host.register(&small());
    let a = host.labels().get("a").unwrap();
    let b = host.labels().get("b").unwrap();
    host.process(Sge::raw(1, 2, a, 0));
    host.advance_time(50);
    let big_id = host.register(&big());
    let out = host.process(Sge::raw(2, 3, b, 60));
    assert!(
        out.iter()
            .any(|(q, s)| *q == big_id && s.src.0 == 1 && s.trg.0 == 3),
        "provisioned horizon keeps the t=0 edge joinable for the window-100 newcomer: {out:?}"
    );
    let mut reference = Engine::from_query(&big());
    let ra = reference.labels().get("a").unwrap();
    let rb = reference.labels().get("b").unwrap();
    reference.process(Sge::raw(1, 2, ra, 0));
    reference.process(Sge::raw(2, 3, rb, 60));
    for t in [60, 80, 99, 100] {
        assert_eq!(host.answer_at(big_id, t), reference.answer_at(t), "t={t}");
    }

    // The horizon is a high-water mark: deregistering the sole big-window
    // query must not prune history its re-registration still needs.
    let mut host = MultiQueryEngine::new();
    let first = host.register(&big());
    let a = host.labels().get("a").unwrap();
    let b = host.labels().get("b").unwrap();
    host.process(Sge::raw(1, 2, a, 0));
    host.deregister(first);
    let _small_id = host.register(&small());
    host.advance_time(50);
    assert_eq!(host.retention_horizon(), 100, "horizon never shrinks");
    let again = host.register(&big());
    let out = host.process(Sge::raw(2, 3, b, 60));
    assert!(
        out.iter()
            .any(|(q, s)| *q == again && s.src.0 == 1 && s.trg.0 == 3),
        "re-registered big window still sees the t=0 edge: {out:?}"
    );
}

// ---------------------------------------------------------------------
// Subsuming-dedup handover (property-based): window variants of one
// canonical structure share a per-root dedup *family* (union coverage +
// exact per-variant interval sets). Deregistering the **widest** variant
// mid-stream is the adversarial case — the family's subsuming coverage was
// dominated by the departing member, so it must be rebuilt from the
// survivors (three variants) or the last survivor must be demoted back to
// a private map with its exact state extracted (two variants). Either way
// the survivors must keep emitting exactly like dedicated engines, and the
// executor fingerprint must stay identical across (shards, workers).
// ---------------------------------------------------------------------

/// Same operator coverage as the batching proptests: PATTERN join,
/// S-PATH closure, and a composite.
const VARIANT_PLANS: [&str; 3] = [
    "Ans(x, y) <- a(x, z), b(z, y).",
    "Ans(x, y) <- a+(x, y).",
    "Ans(x, y) <- a+(x, m), b(m, y).",
];
/// Ascending window sizes: same structure + slide, so all variants share
/// one canonical root and one dedup family.
const VARIANT_WINDOWS: [u64; 3] = [12, 24, 48];
const VARIANT_SLIDE: u64 = 6;
const VARIANT_SPAN: u64 = 72;

fn variant_query(plan_idx: usize, window: u64) -> SgqQuery {
    SgqQuery::new(
        parse_program(VARIANT_PLANS[plan_idx]).unwrap(),
        WindowSpec::new(window, VARIANT_SLIDE),
    )
}

/// Raw events as `(src, trg, label ordinal, Δt)`; materialized per engine
/// so each side's own interner resolves the label names.
fn variant_events(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u8, u64)>> {
    prop::collection::vec((0u64..10, 0u64..10, 0u8..2, 1u64..4), 8..max_len)
}

fn variant_sges(evs: &[(u64, u64, u8, u64)], labels: &dyn Fn(&str) -> Label) -> Vec<Sge> {
    let lv = [labels("a"), labels("b")];
    let mut t = 0u64;
    evs.iter()
        .map(|&(s, tr, l, dt)| {
            t = (t + dt).min(VARIANT_SPAN);
            Sge::new(VertexId(s), VertexId(tr), lv[l as usize], t)
        })
        .collect()
}

fn variant_host_opts(workers: usize, shards: usize) -> EngineOptions {
    EngineOptions {
        workers,
        shards,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn widest_window_variant_deregisters_without_perturbing_survivors(
        evs in variant_events(48),
        plan_idx in 0usize..3,
        variants in 2usize..4,
        split_pct in 25usize..75,
    ) {
        let windows = &VARIANT_WINDOWS[..variants];
        let widest = variants - 1;

        let mut serial = MultiQueryEngine::with_options(variant_host_opts(1, 1));
        let mut parallel = MultiQueryEngine::with_options(variant_host_opts(4, 4));
        let serial_ids: Vec<QueryId> = windows
            .iter()
            .map(|w| serial.register(&variant_query(plan_idx, *w)))
            .collect();
        let parallel_ids: Vec<QueryId> = windows
            .iter()
            .map(|w| parallel.register(&variant_query(plan_idx, *w)))
            .collect();

        // Both hosts registered the same fleet in the same order, so their
        // interners agree and one materialization feeds both.
        let host_labels = serial.labels().clone();
        let sges = variant_sges(&evs, &|n| {
            host_labels.get(n).unwrap_or(Label(u32::MAX))
        });
        let split = (sges.len() * split_pct / 100).max(1);

        for sge in &sges[..split] {
            serial.process(*sge);
            parallel.process(*sge);
        }

        // Pin the departing widest variant's own log at the moment it
        // leaves: identical to a dedicated engine over the same prefix.
        let mut ref_widest = Engine::from_query(&variant_query(plan_idx, windows[widest]));
        let wl = ref_widest.labels().clone();
        let ref_sges = variant_sges(&evs, &|n| wl.get(n).unwrap_or(Label(u32::MAX)));
        for sge in &ref_sges[..split] {
            ref_widest.process(*sge);
        }
        prop_assert_eq!(
            coalesced(serial.results(serial_ids[widest])),
            coalesced(ref_widest.results()),
            "widest variant's log at departure"
        );

        prop_assert!(serial.deregister(serial_ids[widest]));
        prop_assert!(parallel.deregister(parallel_ids[widest]));

        for sge in &sges[split..] {
            serial.process(*sge);
            parallel.process(*sge);
        }

        // Host-vs-host: raw logs and fingerprints are bit-identical across
        // (shards, workers), including through the dedup-state handover.
        for (si, pi) in serial_ids[..widest].iter().zip(&parallel_ids[..widest]) {
            prop_assert_eq!(serial.results(*si), parallel.results(*pi));
        }
        prop_assert_eq!(
            serial.exec_stats().determinism_fingerprint(),
            parallel.exec_stats().determinism_fingerprint(),
            "fingerprints across (shards, workers)"
        );

        // Host-vs-dedicated: every surviving variant matches an engine
        // that ran the whole stream alone.
        let end = VARIANT_SPAN + VARIANT_WINDOWS[widest];
        for (v, si) in serial_ids[..widest].iter().enumerate() {
            let mut dedicated = Engine::from_query(&variant_query(plan_idx, windows[v]));
            let dl = dedicated.labels().clone();
            for sge in variant_sges(&evs, &|n| dl.get(n).unwrap_or(Label(u32::MAX))) {
                dedicated.process(sge);
            }
            prop_assert_eq!(
                coalesced(serial.results(*si)),
                coalesced(dedicated.results()),
                "survivor window={} coverage",
                windows[v]
            );
            for t in (0..=end).step_by(7) {
                prop_assert_eq!(
                    serial.answer_at(*si, t),
                    dedicated.answer_at(t),
                    "survivor window={} answers at t={}",
                    windows[v],
                    t
                );
            }
            // Route-once drain semantics survive the handover: everything
            // exactly once, then empty.
            prop_assert_eq!(serial.drain(*si).len(), serial.results(*si).len());
            prop_assert_eq!(serial.drain(*si).len(), 0);
        }
    }
}
