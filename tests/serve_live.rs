//! Live-host coverage: a real [`sgq_serve::Server`] on a loopback port,
//! driven through the wire protocol by [`sgq_serve::Client`], checked
//! against an in-process [`MultiQueryEngine`] mirror fed the same
//! stream. The acceptance scenario of this repo's serve milestone: two
//! concurrent subscribers, one mid-stream deregister, result sets
//! bit-identical to the in-process engine.

use s_graffito::datagen::workloads::{self, Dataset};
use s_graffito::datagen::{feed, resolve, so_stream, RawStream, SoConfig};
use s_graffito::multiquery::MultiQueryEngine;
use s_graffito::prelude::*;
use s_graffito::serve::client::{Client, ResultRow};
use s_graffito::serve::protocol::{
    Backpressure, Message, ERR_BAD_QUERY, ERR_NOT_SUPPORTED, PROTOCOL_VERSION,
};
use s_graffito::serve::server::{ServeConfig, Server};

const WINDOW: u64 = 600;
const SLIDE: u64 = 24;

fn so_events() -> RawStream {
    so_stream(&SoConfig::new(40, 800))
}

/// A config whose epoch cuts happen *only* at explicit client flush
/// points (barriers, register/deregister): batch-size and wall-clock
/// triggers pushed out of reach. Result logs depend on where epochs are
/// cut (emission chunking is batch-split-dependent even though the
/// semantic coverage is not), so bit-exact live-vs-mirror comparison
/// requires the mirror to replay the same cuts — deterministic cuts
/// make that possible.
fn deterministic_epochs() -> ServeConfig {
    ServeConfig {
        batch_size: usize::MAX,
        tick: std::time::Duration::from_secs(3600),
        ..ServeConfig::default()
    }
}

/// The comparable shape of a wire result (query ids differ between the
/// host and the mirror only if registration orders differ — the tests
/// keep them identical, so ids compare too).
fn row_key(r: &ResultRow) -> (u64, bool, u64, u64, u64, u64) {
    (r.query, r.delete, r.src, r.trg, r.ts, r.exp)
}

fn sgt_key(query: u64, s: &Sgt) -> (u64, bool, u64, u64, u64, u64) {
    (
        query,
        false,
        s.src.0,
        s.trg.0,
        s.interval.ts,
        s.interval.exp,
    )
}

/// Two concurrent subscribers (Q1 and Q6 over the SO stream), Q6
/// deregistered mid-stream; every routed result must match the
/// in-process engine bit for bit, in emission order.
#[test]
fn live_results_match_in_process_engine() {
    let server = Server::spawn(deterministic_epochs()).expect("spawn");
    let addr = server.addr();

    let mut alice = Client::connect(addr).expect("connect");
    let mut bob = Client::connect(addr).expect("connect");
    alice.hello("alice").unwrap();
    bob.hello("bob").unwrap();

    let q1_text = workloads::query_text(1, Dataset::So);
    let q6_text = workloads::query_text(6, Dataset::So);
    let q1 = alice.register(q1_text, WINDOW, SLIDE).unwrap();
    let q6 = bob.register(q6_text, WINDOW, SLIDE).unwrap();
    assert_ne!(q1, q6);

    let raw = so_events();
    let half = raw.events.len() / 2;

    // First half streamed by alice; the barrier guarantees both halves
    // of the comparison see the same prefix/registration interleaving.
    for &(s, t, l, ts) in &raw.events[..half] {
        alice.insert(s, t, l, ts).unwrap();
    }
    alice.barrier().unwrap();
    bob.barrier().unwrap();

    // Bob leaves mid-stream.
    assert!(bob.deregister(q6).unwrap());

    for &(s, t, l, ts) in &raw.events[half..] {
        alice.insert(s, t, l, ts).unwrap();
    }
    alice.barrier().unwrap();
    bob.barrier().unwrap();

    let live_q1: Vec<_> = alice.take_results().iter().map(row_key).collect();
    let live_q6: Vec<_> = bob.take_results().iter().map(row_key).collect();

    // The in-process mirror: same queries, same registration order, same
    // edge interleaving — so label numbering, query ids, and emission
    // order are all identical.
    let mut mirror = MultiQueryEngine::new();
    let m1 = mirror.register(&SgqQuery::new(
        workloads::query(1, Dataset::So),
        WindowSpec::new(WINDOW, SLIDE),
    ));
    let m6 = mirror.register(&SgqQuery::new(
        workloads::query(6, Dataset::So),
        WindowSpec::new(WINDOW, SLIDE),
    ));
    assert_eq!((m1.0, m6.0), (q1, q6));

    // Q1 ∪ Q6 reference all three SO labels, so resolve drops nothing
    // and the live feed's cut index carries over one-to-one.
    let stream = resolve(&raw, mirror.labels());
    assert_eq!(stream.len(), raw.events.len());
    let (first, second) = stream.sges().split_at(half);

    let mut mirror_q1 = Vec::new();
    let mut mirror_q6 = Vec::new();
    mirror.ingest_batch(first);
    mirror_q1.extend(mirror.drain(m1).iter().map(|s| sgt_key(q1, s)));
    mirror_q6.extend(mirror.drain(m6).iter().map(|s| sgt_key(q6, s)));
    mirror.deregister(m6);
    mirror.ingest_batch(second);
    mirror_q1.extend(mirror.drain(m1).iter().map(|s| sgt_key(q1, s)));

    assert!(!live_q1.is_empty(), "Q1 should produce results");
    assert_eq!(live_q1, mirror_q1, "Q1 live vs in-process");
    assert_eq!(live_q6, mirror_q6, "Q6 live vs in-process");

    server.shutdown();
    server.join();
}

/// The resolve cut above drops edges whose label no query references and
/// splits by timestamp; make sure the wire path applies the same §7.2.1
/// discard so both sides see the same effective stream.
#[test]
fn unreferenced_labels_are_discarded_like_resolve() {
    let server = Server::spawn(ServeConfig::default()).expect("spawn");
    let mut c = Client::connect(server.addr()).expect("connect");
    c.hello("t").unwrap();
    let q = c
        .register("Ans(x, y) <- a2q+(x, y).", WINDOW, SLIDE)
        .unwrap();
    c.insert(1, 2, "a2q", 1).unwrap();
    c.insert(2, 3, "never_mentioned", 2).unwrap(); // silently discarded
    c.insert(2, 3, "a2q", 3).unwrap();
    c.barrier().unwrap();
    let rows = c.take_results();
    // a2q+ over 1→2→3: (1,2), (2,3), (1,3).
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|r| r.query == q && !r.delete));
    server.shutdown();
    server.join();
}

/// Malformed and truncated frames: recoverable decode errors keep the
/// connection alive; framing-level desyncs kill only the offending
/// connection, never the host.
#[test]
fn malformed_frames_are_contained() {
    let server = Server::spawn(ServeConfig::default()).expect("spawn");
    let addr = server.addr();

    // Unknown message type: ERROR reply, connection survives.
    let mut c = Client::connect(addr).expect("connect");
    c.send_raw(&[0, 0, 0, 2, PROTOCOL_VERSION, 0x7E]).unwrap();
    match c.recv_message().unwrap() {
        Message::Error { code, .. } => assert_eq!(code, 2),
        other => panic!("expected ERROR, got {other:?}"),
    }
    let hello = c.hello("still-alive").unwrap();
    assert!(!hello.is_empty());

    // Bad version byte: fatal, ERROR + BYE then close.
    let mut bad = Client::connect(addr).expect("connect");
    bad.send_raw(&[0, 0, 0, 2, 9, 0x01]).unwrap();
    match bad.recv_message().unwrap() {
        Message::Error { code, .. } => assert_eq!(code, 3),
        other => panic!("expected ERROR, got {other:?}"),
    }
    bad.drain_until_closed().unwrap();

    // Oversized declared frame length: fatal framing error.
    let mut huge = Client::connect(addr).expect("connect");
    huge.send_raw(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
    match huge.recv_message().unwrap() {
        Message::Error { code, .. } => assert_eq!(code, 7),
        other => panic!("expected ERROR, got {other:?}"),
    }
    huge.drain_until_closed().unwrap();

    // Truncated frame then EOF (a partial write from a dying client):
    // the reader drops the connection without disturbing others.
    let mut cut = Client::connect(addr).expect("connect");
    cut.send_raw(&[0, 0, 0, 50, PROTOCOL_VERSION, 0x01, 0, 4])
        .unwrap();
    drop(cut);

    // The host is still healthy for the well-behaved client.
    let q = c.register("Ans(x, y) <- e(x, y).", WINDOW, SLIDE).unwrap();
    c.insert(1, 2, "e", 1).unwrap();
    c.barrier().unwrap();
    assert_eq!(c.take_results().len(), 1);
    assert!(c.deregister(q).unwrap());

    server.shutdown();
    server.join();
}

/// Bad requests get typed error codes and never wedge the session.
#[test]
fn bad_requests_are_reported() {
    let server = Server::spawn(ServeConfig::default()).expect("spawn");
    let mut c = Client::connect(server.addr()).expect("connect");
    c.hello("t").unwrap();

    // Unparseable query text.
    let err = c
        .register("this is not a program", WINDOW, SLIDE)
        .unwrap_err();
    assert!(
        err.to_string().contains(&format!("error {ERR_BAD_QUERY}")),
        "{err}"
    );

    // Deregistering a query we never registered.
    assert!(!c.deregister(999).unwrap());

    // DELETE on an append-only host.
    c.delete(1, 2, "e", 1).unwrap();
    c.flush().unwrap();
    let err = c.barrier().unwrap_err();
    assert!(
        err.to_string()
            .contains(&format!("error {ERR_NOT_SUPPORTED}")),
        "{err}"
    );

    server.shutdown();
    server.join();
}

/// Explicit deletions flow end-to-end when the host runs without
/// duplicate suppression, producing negative result frames.
#[test]
fn explicit_deletes_produce_negative_results() {
    let server = Server::spawn(ServeConfig {
        explicit_deletes: true,
        ..ServeConfig::default()
    })
    .expect("spawn");
    let mut c = Client::connect(server.addr()).expect("connect");
    c.hello("t").unwrap();
    let q = c.register("Ans(x, y) <- e+(x, y).", WINDOW, SLIDE).unwrap();
    c.insert(1, 2, "e", 1).unwrap();
    c.insert(2, 3, "e", 2).unwrap();
    c.barrier().unwrap();
    let inserted = c.take_results();
    assert_eq!(inserted.len(), 3); // (1,2), (2,3), (1,3)
    assert!(inserted.iter().all(|r| !r.delete));

    c.delete(1, 2, "e", 3).unwrap();
    c.barrier().unwrap();
    let after = c.take_results();
    // The deletion retracts every result the edge supported. Interval
    // truncations may re-emit positive tuples alongside; what matters is
    // that the negative frames arrive and name the dead pairs.
    let retracted: Vec<_> = after.iter().filter(|r| r.delete).collect();
    assert!(!retracted.is_empty());
    assert!(after.iter().all(|r| r.query == q));
    assert!(retracted.iter().any(|r| r.src == 1 && r.trg == 2));

    server.shutdown();
    server.join();
}

/// Drop-newest backpressure: a tiny buffer overflows, the host keeps
/// serving, and the DROPPED counter accounts for every lost frame.
#[test]
fn drop_newest_backpressure_counts_losses() {
    let server = Server::spawn(ServeConfig::default()).expect("spawn");
    let mut c = Client::connect(server.addr()).expect("connect");
    c.hello("t").unwrap();
    // Buffer of 4 result frames; a transitive closure over a chain
    // produces far more in one epoch than the writer can have flushed.
    let q = c
        .register_with(
            "Ans(x, y) <- e+(x, y).",
            WINDOW,
            SLIDE,
            Backpressure::DropNewest,
            4,
        )
        .unwrap();
    // One epoch with a quadratic result blowup: chain of 30 vertices at
    // one timestamp = 435 closure pairs, all routed in one flush while
    // the client is not reading.
    for i in 0..30u64 {
        c.insert(i, i + 1, "e", 1).unwrap();
    }
    c.barrier().unwrap();
    let got = c.take_results().len() as u64;
    let dropped = c.dropped(q);
    assert!(dropped > 0, "expected drops with a 4-frame buffer");
    // Nothing lost silently: received + dropped covers the epoch's 465
    // closure pairs (chain of 31 vertices).
    assert_eq!(got + dropped, 465, "got {got}, dropped {dropped}");

    // The session is still usable afterwards.
    c.insert(100, 101, "e", 2).unwrap();
    c.barrier().unwrap();
    server.shutdown();
    server.join();
}

/// Disconnect backpressure: the slow consumer is evicted with a typed
/// error while other connections keep streaming.
#[test]
fn disconnect_backpressure_evicts_slow_consumer() {
    let server = Server::spawn(ServeConfig::default()).expect("spawn");
    let addr = server.addr();

    let mut slow = Client::connect(addr).expect("connect");
    slow.hello("slow").unwrap();
    slow.register_with(
        "Ans(x, y) <- e+(x, y).",
        WINDOW,
        SLIDE,
        Backpressure::Disconnect,
        4,
    )
    .unwrap();

    let mut feeder = Client::connect(addr).expect("connect");
    feeder.hello("feeder").unwrap();
    let fq = feeder
        .register("Ans(x, y) <- e(x, y).", WINDOW, SLIDE)
        .unwrap();
    for i in 0..30u64 {
        feeder.insert(i, i + 1, "e", 1).unwrap();
    }
    feeder.barrier().unwrap();

    // The slow subscriber's buffer overflowed during that epoch; the
    // host must have closed it with ERR_SLOW_CONSUMER + BYE.
    let reason = slow.drain_until_closed().unwrap();
    assert_eq!(reason, "slow consumer");

    // The feeder is unaffected and saw its own 30 single-hop results.
    assert_eq!(
        feeder
            .take_results()
            .iter()
            .filter(|r| r.query == fq)
            .count(),
        30
    );
    feeder.insert(50, 51, "e", 2).unwrap();
    feeder.barrier().unwrap();

    server.shutdown();
    server.join();
}

/// Graceful shutdown drains the open epoch, writes the final metrics
/// snapshot, and says BYE to connected clients.
#[test]
fn clean_shutdown_writes_final_snapshot() {
    let dir = std::env::temp_dir().join(format!("sgq_serve_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("final.jsonl");
    let trace = dir.join("trace.jsonl");

    let server = Server::spawn(ServeConfig {
        metrics_path: Some(metrics.to_string_lossy().into_owned()),
        trace_path: Some(trace.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    })
    .expect("spawn");

    let mut c = Client::connect(server.addr()).expect("connect");
    c.hello("t").unwrap();
    c.register("Ans(x, y) <- e+(x, y).", WINDOW, SLIDE).unwrap();
    // Edges still pending in the epoch buffer when SHUTDOWN arrives: the
    // drain must flush and route them before the BYE.
    c.insert(1, 2, "e", 1).unwrap();
    c.insert(2, 3, "e", 2).unwrap();
    let reason = c.shutdown().unwrap();
    assert_eq!(reason, "shutdown");
    assert_eq!(c.take_results().len(), 3);
    server.join();

    let snapshot = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        snapshot.lines().any(|l| l.contains("\"record\":\"exec\"")),
        "final snapshot must carry exec records: {snapshot}"
    );
    let trace_doc = std::fs::read_to_string(&trace).unwrap();
    assert!(
        !trace_doc.trim().is_empty(),
        "trace must record the register"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The shared feed helper drives the wire path the same way it drives
/// in-process engines: one code path, two consumers, equal results.
#[test]
fn feed_helper_drives_wire_and_in_process_identically() {
    let raw = so_stream(&SoConfig::new(25, 300));
    let q1_text = workloads::query_text(1, Dataset::So);

    let server = Server::spawn(deterministic_epochs()).expect("spawn");
    let mut c = Client::connect(server.addr()).expect("connect");
    c.hello("feed").unwrap();
    let q = c.register(q1_text, WINDOW, SLIDE).unwrap();
    feed::feed_raw(&raw, |s, t, l, ts| {
        c.insert(s, t, l, ts).unwrap();
    });
    c.barrier().unwrap();
    let live: Vec<_> = c.take_results().iter().map(row_key).collect();

    // The mirror replays the live host's single epoch cut: everything in
    // one batch (`max_batch = 0`), through the same feed helper.
    let mut mirror = MultiQueryEngine::new();
    let m = mirror.register(&SgqQuery::new(
        workloads::query(1, Dataset::So),
        WindowSpec::new(WINDOW, SLIDE),
    ));
    let stream = resolve(&raw, mirror.labels());
    feed::feed_batches(&stream, 0, |batch| mirror.ingest_batch(batch));
    let mirrored: Vec<_> = mirror.drain(m).iter().map(|s| sgt_key(q, s)).collect();

    assert_eq!(live, mirrored);
    server.shutdown();
    server.join();
}
