//! Multi-query host: two users' persistent queries share one stream and —
//! because both need the `follows+` closure — one physical S-PATH
//! operator.
//!
//! ```text
//! cargo run --example multiquery
//! SGQ_WORKERS=4 cargo run --example multiquery   # parallel epoch sweep
//! ```

use s_graffito::prelude::*;

fn main() {
    let window = WindowSpec::sliding(24);
    // `EngineOptions::workers` (default: the `SGQ_WORKERS` environment
    // variable, else 1) runs each schedule level's ready operators on a
    // worker pool. Results are identical at any setting — parallelism is
    // an executor property, not a semantic one.
    let opts = EngineOptions::default();
    let mut host = MultiQueryEngine::with_options(opts);
    println!("epoch sweep workers: {}", opts.workers);

    // Alice watches who can reach whom through follows chains.
    let alice = host.register(&SgqQuery::new(
        parse_program("Reach(x, y) <- follows+(x, y).").expect("valid program"),
        window,
    ));
    // Bob watches recommendations: people reachable through follows chains
    // who posted something — the same follows+ closure, joined further.
    let bob = host.register(&SgqQuery::new(
        parse_program("Rec(u, m) <- follows+(u, v), posts(v, m).").expect("valid program"),
        window,
    ));

    println!(
        "Alice ({alice}) runs:\n{}",
        host.plan_display(alice).unwrap()
    );
    println!("Bob ({bob}) runs:\n{}", host.plan_display(bob).unwrap());
    println!(
        "{} queries, {} live physical operators (one shared follows+ S-PATH, \
         one shared follows WSCAN):",
        host.query_count(),
        host.operator_count()
    );
    for name in host.operator_names() {
        println!("    {name}");
    }

    // One shared input stream; every arrival is evaluated once per shared
    // operator and routed to each subscribed query.
    let follows = host.labels().get("follows").expect("EDB label");
    let posts = host.labels().get("posts").expect("EDB label");
    let stream = [
        (1u64, 2u64, follows, 0u64), // alice follows bob
        (2, 3, follows, 2),          // bob follows carol
        (3, 9, posts, 5),            // carol posts m9
        (2, 7, posts, 6),            // bob posts m7
    ];
    for (src, trg, label, t) in stream {
        let out = host.process(Sge::raw(src, trg, label, t));
        let kind = if label == follows { "follows" } else { "posts" };
        println!("t={t}: +{kind}({src}, {trg})");
        for (q, s) in out {
            let who = if q == alice { "alice" } else { "bob" };
            println!("    → {who}: ({}, {}) valid {}", s.src, s.trg, s.interval);
        }
    }

    // High-throughput feeds skip `process`'s per-call (QueryId, Sgt) pair
    // building entirely: drain-only ingestion, then a cursor per
    // subscription whenever the consumer actually wants results.
    host.ingest_batch(&[Sge::raw(9, 1, follows, 8), Sge::raw(3, 4, posts, 9)]);
    for (q, who) in [(alice, "alice"), (bob, "bob")] {
        println!("{who} drains {} results", host.drain(q).len());
    }

    // Each query keeps its full emission log independently.
    println!(
        "\nalice has {} results, bob has {}",
        host.results(alice).len(),
        host.results(bob).len()
    );

    // Bob leaves: his exclusive operators (the posts WSCAN and the join)
    // are retired; the shared follows+ subplan lives on for Alice.
    host.deregister(bob);
    println!(
        "after bob deregisters: {} operators remain for {} query",
        host.operator_count(),
        host.query_count()
    );
    for name in host.operator_names() {
        println!("    {name}");
    }
}
