//! Example 4 of the paper: product recommendations that combine **two
//! streaming graphs** — a social network of user interactions and a
//! transaction network of purchases — demonstrating UNION of rule bodies
//! (the `OPTIONAL` patterns of the G-CORE query in Figure 7) and the
//! composability of SGQ (§5.3).
//!
//! ```text
//! cargo run --example cross_stream_recommendation
//! ```

use s_graffito::prelude::*;

fn main() {
    // Figure 7's pattern as an RQ (given in the paper below Example 4):
    //   ACQ(u1, u2) ← likes(u1, m1), posts(u2, m1)
    //   ACQ(u1, u2) ← follows(u1, u2)
    //   REC(u, p)   ← ACQ(u, u2), purchase(u2, p)
    let program = parse_program(
        "ACQ(u1, u2)  <- likes(u1, m1), posts(u2, m1).
         ACQ(u1, u2)  <- follows(u1, u2).
         Answer(u, p) <- ACQ(u, u2), purchase(u2, p).",
    )
    .expect("valid program");
    // Figure 7 windows the two streams individually: the social stream at
    // 24 hours, the transaction stream at 30 days sliding daily. Each
    // input label's WSCAN gets its own window (Def. 16 is per-operator).
    let query = SgqQuery::new(program, WindowSpec::new(720, 24))
        .with_label_window("likes", WindowSpec::sliding(24))
        .with_label_window("posts", WindowSpec::sliding(24))
        .with_label_window("follows", WindowSpec::sliding(24));
    let mut engine = Engine::from_query(&query);

    let labels = engine.labels().clone();
    let likes = labels.get("likes").unwrap();
    let posts = labels.get("posts").unwrap();
    let follows = labels.get("follows").unwrap();
    let purchase = labels.get("purchase").unwrap();

    // Interleave the two input streams (UNION happens inside the plan;
    // both feed the same engine, distinguished by label).
    // Users 0–9, posts 100+, products 1000+.
    let events = [
        (0u64, 100u64, likes, 1u64), // user0 likes post100
        (1, 100, posts, 2),          // user1 authored post100 → ACQ(0,1)
        (2, 1, follows, 3),          // user2 follows user1   → ACQ(2,1)
        (1, 1000, purchase, 5),      // user1 buys product1000
        (3, 101, likes, 6),
        (4, 101, posts, 7),       // ACQ(3,4)
        (4, 1001, purchase, 9),   // user4 buys product1001
        (1, 1002, purchase, 400), // much later purchase
    ];

    println!("cross-stream recommendations:\n");
    for (src, trg, label, t) in events {
        let results = engine.process(Sge::raw(src, trg, label, t));
        println!("t={t:>3}: +{}({src}, {trg})", labels.name(label));
        for r in results {
            println!(
                "       💡 recommend product {} to user {} (valid {})",
                r.trg.0, r.src.0, r.interval
            );
        }
    }

    // Composability (§5.3): the recommendation stream is itself a valid
    // streaming graph — feed it into a second persistent query that finds
    // users recommended the same product ("co-shoppers").
    println!("\ncomposing: co-recommendation pairs over the result stream");
    let second = parse_program("CoRec(u1, u2) <- rec(u1, p), rec(u2, p).").unwrap();
    let mut second_engine = Engine::from_query(&SgqQuery::new(second, WindowSpec::sliding(720)));
    let rec = second_engine.labels().get("rec").unwrap();
    // Re-ingest the first engine's results, ordered by their start time.
    let mut results: Vec<Sgt> = engine.results().to_vec();
    results.sort_by_key(|r| r.interval.ts);
    let mut seen = std::collections::BTreeSet::new();
    for r in &results {
        for pair in second_engine.process(Sge::new(r.src, r.trg, rec, r.interval.ts)) {
            let (a, b) = (pair.src.0.min(pair.trg.0), pair.src.0.max(pair.trg.0));
            if a != b && seen.insert((a, b)) {
                println!("       🤝 users {a} and {b} were recommended the same product");
            }
        }
    }
}
