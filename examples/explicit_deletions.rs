//! Explicit deletions (§6.2.5): negative tuples retract previously
//! inserted edges, cancelling derived results — beyond the implicit
//! expirations that sliding windows already handle.
//!
//! ```text
//! cargo run --example explicit_deletions
//! ```

use s_graffito::prelude::*;

fn main() {
    let program = parse_program("Ans(x, y) <- flight(x, z), flight(z, y).").unwrap();
    let query = SgqQuery::new(program, WindowSpec::sliding(1_000));
    // Deletion pipelines disable duplicate suppression so insert/delete
    // emissions cancel exactly (§6.2.5).
    let mut engine = Engine::from_query_with(
        &query,
        EngineOptions {
            suppress_duplicates: false,
            ..Default::default()
        },
    );
    let flight = engine.labels().get("flight").unwrap();

    println!("one-stop connections, with schedule changes:\n");
    let show = |engine: &Engine, t: u64| {
        let mut pairs: Vec<_> = engine.answer_at(t).into_iter().collect();
        pairs.sort();
        let s: Vec<String> = pairs
            .iter()
            .map(|(a, b)| format!("{}→{}", a.0, b.0))
            .collect();
        println!("    connections now: [{}]", s.join(", "));
    };

    // YYZ=1, FRA=2, LYS=3, WLO=4.
    engine.process(Sge::raw(1, 2, flight, 10)); // YYZ–FRA
    engine.process(Sge::raw(2, 3, flight, 11)); // FRA–LYS
    engine.process(Sge::raw(2, 4, flight, 12)); // FRA–WLO
    println!("t=12: schedule loaded");
    show(&engine, 12);

    // The FRA–LYS flight is cancelled: a negative tuple retracts it and
    // the derived YYZ–LYS connection disappears.
    let cancelled = engine.delete(Sge::raw(2, 3, flight, 11));
    println!(
        "\nt=13: FRA–LYS cancelled ({} retraction(s) emitted)",
        cancelled.len()
    );
    show(&engine, 13);

    // A replacement flight restores the connection.
    engine.process(Sge::raw(2, 3, flight, 14));
    println!("\nt=14: replacement FRA–LYS scheduled");
    show(&engine, 14);
}
