//! A complete `sgq-serve` session, in-process: start the host, connect
//! two subscribers over loopback TCP, stream a synthetic StackOverflow
//! graph at it through the shared feed helper, and collect each query's
//! live result stream plus the host's metrics/trace artifacts.
//!
//! ```text
//! cargo run --example serve_session
//! ```
//!
//! CI runs this as the serve smoke leg: it writes `METRICS_serve.jsonl`
//! and `TRACE_serve.jsonl` into the working directory and exits
//! non-zero if the session misbehaves.

use s_graffito::datagen::workloads::{self, Dataset};
use s_graffito::datagen::{feed, so_stream, SoConfig};
use s_graffito::serve::client::Client;
use s_graffito::serve::server::{ServeConfig, Server};

fn main() {
    // A host with periodic metrics export, like a real deployment would
    // run it (the `sgq-serve` binary wires the same config from flags).
    let server = Server::spawn(ServeConfig {
        metrics_path: Some("METRICS_serve.jsonl".to_string()),
        trace_path: Some("TRACE_serve.jsonl".to_string()),
        metrics_every: Some(std::time::Duration::from_millis(200)),
        ..ServeConfig::default()
    })
    .expect("spawn host");
    println!("host listening on {}", server.addr());

    // Two independent subscribers, each with its own persistent query —
    // the paper's Q1 and Q6 over the StackOverflow workload.
    let mut alice = Client::connect(server.addr()).expect("connect");
    let mut bob = Client::connect(server.addr()).expect("connect");
    println!("alice greets {}", alice.hello("alice").unwrap());
    println!("bob greets   {}", bob.hello("bob").unwrap());

    let q1 = alice
        .register(workloads::query_text(1, Dataset::So), 720, 24)
        .unwrap();
    let q6 = bob
        .register(workloads::query_text(6, Dataset::So), 720, 24)
        .unwrap();
    println!(
        "alice runs Q1 as query {q1}: {}",
        workloads::query_text(1, Dataset::So)
    );
    println!(
        "bob runs Q6 as query {q6}:   {}",
        workloads::query_text(6, Dataset::So)
    );

    // Stream the edges over the wire — one code path (`datagen::feed`)
    // shared with the in-process examples and the repro harness.
    let raw = so_stream(&SoConfig::new(50, 1_000));
    let fed = feed::feed_raw(&raw, |src, trg, label, t| {
        alice.insert(src, trg, label, t).unwrap();
    });
    println!("streamed {fed} edges");

    // Barriers flush the open epoch and deliver every pending result.
    alice.barrier().unwrap();
    bob.barrier().unwrap();
    let alice_results = alice.take_results();
    let bob_results = bob.take_results();
    println!("alice received {} Q1 results", alice_results.len());
    println!("bob received   {} Q6 results", bob_results.len());
    assert!(
        !alice_results.is_empty(),
        "Q1 must produce results on the SO stream"
    );

    // A live metrics snapshot over the wire, same JSONL shape as the
    // host's periodic file export.
    let snapshot = bob.metrics().unwrap();
    let execs = snapshot
        .lines()
        .filter(|l| l.contains("\"record\":\"exec\""))
        .count();
    let operators = snapshot
        .lines()
        .filter(|l| l.contains("\"record\":\"operator\""))
        .count();
    println!("live snapshot: {execs} exec record(s), {operators} operator record(s)");
    assert!(execs >= 1, "snapshot must carry an exec record");

    // Graceful shutdown: drain, final snapshot + trace to disk, BYE.
    let reason = alice.shutdown().unwrap();
    println!("host said bye ({reason})");
    server.join();

    let on_disk = std::fs::read_to_string("METRICS_serve.jsonl").expect("metrics artifact");
    assert!(
        on_disk.lines().any(|l| l.contains("\"record\":\"exec\"")),
        "final snapshot written"
    );
    let trace = std::fs::read_to_string("TRACE_serve.jsonl").expect("trace artifact");
    assert!(!trace.trim().is_empty(), "lifecycle trace written");
    println!(
        "artifacts: METRICS_serve.jsonl ({} lines), TRACE_serve.jsonl ({} lines)",
        on_disk.lines().count(),
        trace.lines().count()
    );
}
