//! Property-graph filtering: attribute predicates over edge properties
//! (the paper's §8 future-work extension, implemented here).
//!
//! A content-moderation service watches an interaction stream where every
//! `rates` edge carries a `stars` score and a `verified` flag. The
//! persistent query notifies about items that received a *verified,
//! low-star* rating from someone the author follows — a signal that a
//! trusted connection is unhappy.
//!
//! ```text
//! cargo run --example property_filtering
//! ```

use s_graffito::prelude::*;
use s_graffito::types::PropMap;

fn main() {
    // Attribute predicates in brackets constrain input-edge properties;
    // the planner pushes them next to the WSCAN (§5.4 rule 1), so
    // non-qualifying edges never reach join state.
    let program = parse_program(
        "Flag(author, item) <- rates(critic, item)[stars <= 2, verified = true],
                               posts(author, item),
                               follows(author, critic).",
    )
    .expect("valid program");
    let query = SgqQuery::new(program, WindowSpec::sliding(48));

    let plan = plan_canonical(&query);
    println!(
        "plan (note the FILTER directly above WSCAN(S_rates)):\n{}",
        plan.display()
    );

    let mut engine = Engine::from_query(&query);
    let rates = engine.labels().get("rates").unwrap();
    let posts = engine.labels().get("posts").unwrap();
    let follows = engine.labels().get("follows").unwrap();

    // Vertices: 1 = author, 2..=4 critics, 100 = the item.
    engine.process(Sge::raw(1, 100, posts, 0));
    engine.process(Sge::raw(1, 2, follows, 1));
    engine.process(Sge::raw(1, 3, follows, 2));

    let ratings = [
        // (critic, stars, verified) — only the third satisfies both preds.
        (2u64, 5i64, true),
        (3, 1, false),
        (3, 2, true),
        (4, 1, true), // qualifies on properties, but author doesn't follow 4
    ];
    for (i, (critic, stars, verified)) in ratings.into_iter().enumerate() {
        let props = PropMap::from_pairs::<_, s_graffito::types::PropValue, _>([
            ("stars", stars.into()),
            ("verified", verified.into()),
        ]);
        let out = engine.process_with_props(Sge::raw(critic, 100, rates, 3 + i as u64), props);
        println!(
            "critic {critic} rated {stars}★ (verified: {verified}) → {} flag(s)",
            out.len()
        );
        for r in out {
            println!(
                "    FLAG: author {} should review item {}",
                r.src.0, r.trg.0
            );
        }
    }

    // The same query through the G-CORE front end with inline predicates.
    let gq = s_graffito::query::gcore::parse_gcore(
        "CONSTRUCT (author)-[:flag]->(item)
         MATCH (critic)-[:rates {stars <= 2, verified = true}]->(item),
               (author)-[:posts]->(item),
               (author)-[:follows]->(critic)
         ON interactions WINDOW (48h)",
    )
    .expect("valid G-CORE");
    println!(
        "\nG-CORE translation produces the same RQ:\n{}",
        gq.program.display()
    );
}
