//! Plan-space exploration (§5.4 / §7.4): the SGA transformation rules
//! generate equivalent plans for Q4 = `(a·b·c)+`, which can differ by
//! large factors in throughput — the motivation for an SGA-based
//! optimizer.
//!
//! ```text
//! cargo run --release --example plan_explorer
//! ```

use s_graffito::datagen::{resolve, so_stream, workloads, SoConfig};
use s_graffito::prelude::*;

fn main() {
    // Q4 over the SO-like stream: a=a2q, b=c2q, c=c2a.
    let program = workloads::query(4, workloads::Dataset::So);
    let window = WindowSpec::new(4_000, 400);
    let query = SgqQuery::new(program, window);

    let canonical = plan_canonical(&query);
    println!(
        "canonical plan (Algorithm SGQParser):\n{}",
        canonical.display()
    );

    // Enumerate the plan space through the transformation rules.
    let plans = rewrite::enumerate_plans(&canonical, 8);
    println!("{} equivalent plans found by rewriting\n", plans.len());

    // A modest SO-like stream; all plans must produce identical answers.
    let raw = so_stream(&SoConfig::new(300, 20_000).with_span(20_000));
    let stream = resolve(&raw, &canonical.labels);

    let mut reference: Option<std::collections::BTreeSet<(u64, u64)>> = None;
    let mut best: Option<(usize, f64)> = None;
    for (i, plan) in plans.iter().enumerate() {
        let mut engine = Engine::from_plan(plan);
        let stats = engine.run(&stream);
        let answers: std::collections::BTreeSet<(u64, u64)> = engine
            .answer_at(stream.last_ts().unwrap())
            .into_iter()
            .map(|(a, b)| (a.0, b.0))
            .collect();
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(r, &answers, "plan {i} disagrees"),
        }
        if best.is_none_or(|(_, t)| stats.throughput() > t) {
            best = Some((i, stats.throughput()));
        }
        println!(
            "plan {i}: {:>9.0} edges/s, p99 slide latency {:>9.2?}, {} ops, {} stateful",
            stats.throughput(),
            stats.tail_latency(),
            plan.expr.size(),
            plan.expr.stateful_ops(),
        );
    }
    println!("\nall plans returned identical answers ✓");

    // Re-run the fastest plan with full observability and render the
    // lowered tree with its live counters — where the plans' throughput
    // gap actually comes from (per-operator selectivity, state, nanos).
    let (i, _) = best.expect("at least the canonical plan ran");
    let mut engine = Engine::from_plan_with(
        &plans[i],
        EngineOptions {
            obs: ObsLevel::Timing,
            ..Default::default()
        },
    );
    engine.run(&stream);
    println!("\nfastest plan was plan {i}; explain-analyze under SGQ_OBS=timing:");
    println!("{}", engine.explain_analyze());
}
