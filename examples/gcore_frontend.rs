//! The G-CORE front end (§4.2): Figure 6's query — with the paper's
//! `WINDOW`/`SLIDE` streaming extension — parsed, translated to RQ,
//! planned into SGA, and executed.
//!
//! ```text
//! cargo run --example gcore_frontend
//! ```

use s_graffito::prelude::*;
use s_graffito::query::gcore::parse_gcore;

fn main() {
    // Figure 6 of the paper (Example 1's real-time notification task).
    let text = "
        PATH RL = (u1) -/<:follows^*>/-> (u2), (u1)-[:likes]->(m1)<-[:posts]-(u2)
        CONSTRUCT (u)-[:notify]->(m)
        MATCH (u) -/<~RL*>/-> (v), (v)-[:posts]->(m)
        ON social_stream WINDOW (24h) SLIDE (1h)";
    println!("G-CORE query:{text}\n");

    let query = parse_gcore(text).expect("valid G-CORE");
    println!("translated RQ (Example 2):\n{}", query.program.display());
    println!(
        "window: {} hours, slide {} hour(s)\n",
        query.window.size, query.window.slide
    );
    let plan = plan_canonical(&query);
    println!(
        "canonical SGA plan (Example 8 / Figure 8):\n{}",
        plan.display()
    );

    let mut engine = Engine::from_query(&query);
    let labels = engine.labels().clone();
    let l = |n: &str| labels.get(n).unwrap();
    // The Figure 2 stream (u=0, v=1, b=2, y=3, c=4, a=5).
    let stream = [
        (0u64, 1u64, "follows", 7u64),
        (1, 2, "posts", 10),
        (3, 0, "follows", 13),
        (1, 4, "posts", 17),
        (0, 5, "posts", 22),
        (3, 5, "likes", 28),
        (0, 2, "likes", 29),
        (0, 4, "likes", 30),
    ];
    println!("executing over the Figure 2 stream:");
    for (s, t, lab, ts) in stream {
        for r in engine.process(Sge::raw(s, t, l(lab), ts)) {
            println!(
                "  t={ts}: notify({}, {}) valid {}",
                r.src, r.trg, r.interval
            );
        }
    }
}
