//! Example 1 of the paper: real-time content notification over a social
//! interaction stream, with **paths as first-class results** (R3).
//!
//! A user `u2` is a *recentLiker* of `u1` if `u2` recently liked a post
//! created by `u1` and they are connected by a path of `follows` edges.
//! The service notifies users of content posted by anyone connected to
//! them through a chain of recentLiker relationships, and can return the
//! full path of people in that chain.
//!
//! ```text
//! cargo run --example social_recommendation
//! ```

use s_graffito::prelude::*;

fn main() {
    // Example 2's RQ (the Datalog form of Figure 1's graph pattern).
    let program = parse_program(
        "RL(u1, u2)   <- likes(u1, m1), follows+(u1, u2), posts(u2, m1).
         Notify(u, m) <- RL+(u, v), posts(v, m).
         Answer(u, m) <- Notify(u, m).",
    )
    .expect("valid program");
    let query = SgqQuery::new(program, WindowSpec::sliding(24));
    let mut engine = Engine::from_query(&query);

    let labels = engine.labels().clone();
    let follows = labels.get("follows").unwrap();
    let posts = labels.get("posts").unwrap();
    let likes = labels.get("likes").unwrap();
    let name = |v: VertexId| match v.0 {
        0 => "u".to_string(),
        1 => "v".to_string(),
        2 => "b".to_string(),
        3 => "y".to_string(),
        4 => "c".to_string(),
        5 => "a".to_string(),
        other => format!("v{other}"),
    };

    // The input graph stream of Figure 2 (u=0, v=1, b=2, y=3, c=4, a=5).
    let stream = [
        (0u64, 1u64, follows, 7u64),
        (1, 2, posts, 10),
        (3, 0, follows, 13),
        (1, 4, posts, 17),
        (0, 5, posts, 22),
        (3, 5, likes, 28),
        (0, 2, likes, 29),
        (0, 4, likes, 30),
    ];

    println!("real-time notifications (24h window):\n");
    for (src, trg, label, t) in stream {
        let results = engine.process(Sge::new(VertexId(src), VertexId(trg), label, t));
        println!(
            "t={t:>2}: {}-{}->{}",
            name(VertexId(src)),
            labels.name(label),
            name(VertexId(trg))
        );
        for r in results {
            println!(
                "      🔔 notify {}: new content {} (valid {})",
                name(r.src),
                name(r.trg),
                r.interval
            );
        }
    }

    // Paths are first-class: inspect the recentLiker chains themselves by
    // running the path sub-query and reading materialized path payloads.
    println!("\nrecentLiker paths (the RLP stream of Example 7):");
    let path_program = parse_program(
        "RL(u1, u2) <- likes(u1, m1), follows+(u1, u2), posts(u2, m1).
         Ans(x, y)  <- RL+(x, y).",
    )
    .unwrap();
    let mut path_engine = Engine::from_query(&SgqQuery::new(path_program, WindowSpec::sliding(24)));
    let pl = path_engine.labels().clone();
    for (src, trg, label, t) in stream {
        let l = pl.get(labels.name(label)).unwrap();
        for r in path_engine.process(Sge::new(VertexId(src), VertexId(trg), l, t)) {
            if let Payload::Path(p) = &r.payload {
                let hops: Vec<String> = p.vertices().iter().map(|&v| name(v)).collect();
                println!(
                    "      path {} (length {}, valid {})",
                    hops.join(" ⇝ "),
                    p.len(),
                    r.interval
                );
            }
        }
    }
}
