//! Quickstart: register a persistent streaming graph query and watch
//! results arrive incrementally.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use s_graffito::datagen::feed;
use s_graffito::prelude::*;
use s_graffito::types::InputStream;

fn main() {
    // A persistent query in the Datalog-style RQ syntax (Def. 13/15):
    // pairs of users connected by a path of `follows` edges, restricted to
    // a sliding window of the last 24 hours.
    let program = parse_program("Ans(x, y) <- follows+(x, y).").expect("valid program");
    let query = SgqQuery::new(program, WindowSpec::sliding(24));

    // Show the canonical SGA plan the engine will run (Algorithm SGQParser).
    let plan = plan_canonical(&query);
    println!("canonical SGA plan:\n{}", plan.display());

    let mut engine = Engine::from_query(&query);
    let follows = engine.labels().get("follows").expect("EDB label");

    // Feed a small input graph stream; results stream out as they appear.
    // `datagen::feed` is the one stream-feeding code path shared with the
    // repro harness, the server example, and the tests.
    let stream = InputStream::from_ordered(vec![
        Sge::raw(1, 2, follows, 0),  // alice follows bob           @ t=0
        Sge::raw(2, 3, follows, 5),  // bob follows carol           @ t=5
        Sge::raw(3, 1, follows, 8),  // carol follows alice (cycle) @ t=8
        Sge::raw(4, 1, follows, 26), // dave follows alice          @ t=26 (1→2 expired)
    ]);
    feed::feed(&stream, |sge| {
        let results = engine.process(sge);
        println!(
            "t={}: +follows({}, {}) produced {} result(s)",
            sge.t,
            sge.src.0,
            sge.trg.0,
            results.len()
        );
        for r in results {
            println!("    {:?} reaches {:?} during {}", r.src, r.trg, r.interval);
        }
    });

    // Persistent queries answer "as of" any instant (snapshot reducibility):
    println!("\nanswers valid at t=9:");
    let mut at9: Vec<_> = engine.answer_at(9).into_iter().collect();
    at9.sort();
    for (s, t) in at9 {
        println!("    {s} → {t}");
    }
    println!("\nanswers valid at t=27 (early edges expired):");
    let mut at27: Vec<_> = engine.answer_at(27).into_iter().collect();
    at27.sort();
    for (s, t) in at27 {
        println!("    {s} → {t}");
    }
}
