//! Quickstart: register a persistent streaming graph query and watch
//! results arrive incrementally.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use s_graffito::prelude::*;

fn main() {
    // A persistent query in the Datalog-style RQ syntax (Def. 13/15):
    // pairs of users connected by a path of `follows` edges, restricted to
    // a sliding window of the last 24 hours.
    let program = parse_program("Ans(x, y) <- follows+(x, y).").expect("valid program");
    let query = SgqQuery::new(program, WindowSpec::sliding(24));

    // Show the canonical SGA plan the engine will run (Algorithm SGQParser).
    let plan = plan_canonical(&query);
    println!("canonical SGA plan:\n{}", plan.display());

    let mut engine = Engine::from_query(&query);
    let follows = engine.labels().get("follows").expect("EDB label");

    // Feed a small input graph stream; results stream out as they appear.
    let stream = [
        (1u64, 2u64, 0u64), // alice follows bob          @ t=0
        (2, 3, 5),          // bob follows carol          @ t=5
        (3, 1, 8),          // carol follows alice (cycle)@ t=8
        (4, 1, 26),         // dave follows alice         @ t=26 (1→2 expired)
    ];
    for (src, trg, t) in stream {
        let results = engine.process(Sge::raw(src, trg, follows, t));
        println!(
            "t={t}: +follows({src}, {trg}) produced {} result(s)",
            results.len()
        );
        for r in results {
            println!("    {:?} reaches {:?} during {}", r.src, r.trg, r.interval);
        }
    }

    // Persistent queries answer "as of" any instant (snapshot reducibility):
    println!("\nanswers valid at t=9:");
    let mut at9: Vec<_> = engine.answer_at(9).into_iter().collect();
    at9.sort();
    for (s, t) in at9 {
        println!("    {s} → {t}");
    }
    println!("\nanswers valid at t=27 (early edges expired):");
    let mut at27: Vec<_> = engine.answer_at(27).into_iter().collect();
    at27.sort();
    for (s, t) in at27 {
        println!("    {s} → {t}");
    }
}
